#include "x86/decoder.hpp"

namespace fsr::x86 {

namespace {

/// Cursor over the instruction bytes; every read is bounds-checked and
/// failure is propagated as "no instruction" rather than an exception
/// (decode failures are an expected, recoverable event during sweeps).
struct Cursor {
  std::span<const std::uint8_t> code;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos >= code.size()) {
      ok = false;
      return 0;
    }
    return code[pos++];
  }
  std::uint8_t peek() {
    if (pos >= code.size()) {
      ok = false;
      return 0;
    }
    return code[pos];
  }
  std::uint16_t u16() {
    std::uint16_t lo = u8(), hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  void skip(std::size_t n) {
    if (pos + n > code.size()) ok = false;
    pos += n;
  }
};

struct Prefixes {
  bool opsize66 = false;
  bool addrsize67 = false;
  bool f2 = false;
  bool f3 = false;
  bool seg3e = false;  // DS override; doubles as NOTRACK on indirect branches
  bool lock = false;
  std::uint8_t rex = 0;  // 0 when absent

  [[nodiscard]] bool rex_w() const { return (rex & 0x08) != 0; }
};

/// Consume legacy prefixes and (in 64-bit mode) a REX prefix.
Prefixes read_prefixes(Cursor& c, Mode mode) {
  Prefixes p;
  for (;;) {
    if (c.pos >= c.code.size()) {
      c.ok = false;
      return p;
    }
    std::uint8_t b = c.code[c.pos];
    switch (b) {
      case 0x66: p.opsize66 = true; break;
      case 0x67: p.addrsize67 = true; break;
      case 0xf0: p.lock = true; break;
      case 0xf2: p.f2 = true; break;
      case 0xf3: p.f3 = true; break;
      case 0x3e: p.seg3e = true; break;
      case 0x2e: case 0x36: case 0x26: case 0x64: case 0x65: break;
      default:
        if (mode == Mode::k64 && (b & 0xf0) == 0x40) {
          // REX must be the final prefix before the opcode.
          p.rex = b;
          ++c.pos;
          return p;
        }
        return p;
    }
    ++c.pos;
  }
}

/// Consume a ModRM byte plus SIB/displacement. Returns false on
/// truncation or on 16-bit addressing (which this decoder rejects).
/// `modrm_out` receives the raw ModRM byte.
bool read_modrm(Cursor& c, const Prefixes& p, Mode mode, std::uint8_t& modrm_out) {
  // 16-bit addressing (67h in 32-bit mode) uses a different ModRM
  // layout; compilers never emit it in the binaries we model.
  if (mode == Mode::k32 && p.addrsize67) return false;

  std::uint8_t modrm = c.u8();
  if (!c.ok) return false;
  modrm_out = modrm;
  const std::uint8_t mod = modrm >> 6;
  const std::uint8_t rm = modrm & 7;

  if (mod == 3) return true;  // register operand, no memory bytes

  if (rm == 4) {  // SIB follows
    std::uint8_t sib = c.u8();
    if (!c.ok) return false;
    const std::uint8_t base = sib & 7;
    if (mod == 0 && base == 5) c.skip(4);  // disp32 with no base
  }
  if (mod == 0 && rm == 5) {
    c.skip(4);  // disp32 (RIP-relative in 64-bit mode)
  } else if (mod == 1) {
    c.skip(1);
  } else if (mod == 2) {
    c.skip(4);
  }
  return c.ok;
}

std::int64_t sext8(std::uint8_t v) { return static_cast<std::int8_t>(v); }
std::int64_t sext32(std::uint32_t v) { return static_cast<std::int32_t>(v); }

/// Truncate a computed branch target to the address width of the mode.
std::uint64_t canon(std::uint64_t va, Mode mode) {
  return mode == Mode::k32 ? (va & 0xffffffffULL) : va;
}

struct Op2Info {
  bool valid = false;
  bool modrm = false;
  int imm = 0;  // extra immediate bytes after modrm
  Kind kind = Kind::kOther;
};

/// Classify a two-byte (0F xx) opcode.
Op2Info op2_info(std::uint8_t op, const Prefixes& p, Mode mode) {
  Op2Info r;
  r.valid = true;

  if (op >= 0x80 && op <= 0x8f) {  // jcc rel32 — handled by caller
    r.kind = Kind::kJcc;
    return r;
  }
  switch (op) {
    case 0x05:  // syscall
      r.valid = mode == Mode::k64;
      return r;
    case 0x06: case 0x08: case 0x09:  // clts / invd / wbinvd
      return r;
    case 0x0b:
      r.kind = Kind::kUd2;
      return r;
    case 0x30: case 0x31: case 0x32: case 0x33: case 0x34: case 0x35:
      return r;  // wrmsr/rdtsc/rdmsr/rdpmc/sysenter/sysexit
    case 0x77:
      return r;  // emms
    case 0xa2:
      return r;  // cpuid
    case 0xa0: case 0xa1: case 0xa8: case 0xa9:
      return r;  // push/pop fs/gs
    case 0x0d:  // prefetch hints
    case 0x18: case 0x19: case 0x1a: case 0x1b:
    case 0x1c: case 0x1d:
      r.modrm = true;
      return r;
    case 0x1e:
      // F3 0F 1E FA/FB are ENDBR64/ENDBR32; other forms are hint nops.
      r.modrm = true;
      r.kind = Kind::kNop;
      return r;
    case 0x1f:
      r.modrm = true;
      r.kind = Kind::kNop;
      return r;
    case 0xc8: case 0xc9: case 0xca: case 0xcb:
    case 0xcc: case 0xcd: case 0xce: case 0xcf:
      return r;  // bswap reg
    default:
      break;
  }

  // ModRM rows.
  if (op <= 0x01 ||                        // grp6 / grp7
      (op >= 0x10 && op <= 0x17) ||        // SSE moves
      (op >= 0x20 && op <= 0x23) ||        // mov CR/DR
      (op >= 0x28 && op <= 0x2f) ||        // SSE conversions/compares
      (op >= 0x40 && op <= 0x4f) ||        // cmov
      (op >= 0x50 && op <= 0x6f) ||        // SSE arithmetic / packed
      (op >= 0x74 && op <= 0x76) ||        // pcmpeq
      (op >= 0x7c && op <= 0x7f) ||        // hadd / movdq
      (op >= 0x90 && op <= 0x9f) ||        // setcc
      op == 0xa3 || op == 0xa5 ||          // bt / shld cl
      op == 0xab || op == 0xad ||          // bts / shrd cl
      op == 0xae ||                        // grp15 (fences, [ld/st]mxcsr)
      op == 0xaf ||                        // imul
      op == 0xb0 || op == 0xb1 ||          // cmpxchg
      op == 0xb3 ||                        // btr
      op == 0xb6 || op == 0xb7 ||          // movzx
      op == 0xbb || op == 0xbc || op == 0xbd ||  // btc / bsf / bsr
      op == 0xbe || op == 0xbf ||          // movsx
      op == 0xc0 || op == 0xc1 ||          // xadd
      op == 0xc3 ||                        // movnti
      op == 0xc7 ||                        // grp9 (cmpxchg8b/16b)
      (op >= 0xd0 && op <= 0xfe)) {        // SSE packed arithmetic
    r.modrm = true;
    if (op == 0xaf) r.kind = Kind::kArith;
    if (op == 0xb6 || op == 0xb7 || op == 0xbe || op == 0xbf) r.kind = Kind::kMov;
    return r;
  }

  // ModRM + imm8 rows.
  if (op == 0x70 || op == 0x71 || op == 0x72 || op == 0x73 ||  // pshuf / shift grps
      op == 0xa4 || op == 0xac ||                              // shld/shrd imm8
      op == 0xba ||                                            // grp8 (bt imm8)
      op == 0xc2 || op == 0xc4 || op == 0xc5 || op == 0xc6) {  // cmpps/pinsrw/...
    r.modrm = true;
    r.imm = 1;
    return r;
  }

  (void)p;
  r.valid = false;
  return r;
}

}  // namespace

std::optional<Insn> decode(std::span<const std::uint8_t> code, std::uint64_t addr,
                           Mode mode) {
  Cursor c{code};
  Prefixes p = read_prefixes(c, mode);
  if (!c.ok) return std::nullopt;

  Insn insn;
  insn.addr = addr;

  const int word = mode == Mode::k64 ? 8 : 4;
  std::uint8_t op = c.u8();
  if (!c.ok) return std::nullopt;
  std::uint16_t opcode_full = op;

  std::uint8_t modrm = 0;
  bool got_modrm = false;
  auto MODRM = [&]() {
    const bool ok = read_modrm(c, p, mode, modrm);
    if (ok) got_modrm = true;
    return ok;
  };
  auto finish = [&]() -> std::optional<Insn> {
    if (!c.ok || c.pos > code.size() || c.pos > 15) return std::nullopt;
    insn.length = static_cast<std::uint8_t>(c.pos);
    insn.opcode = opcode_full;
    if (got_modrm) {
      insn.modrm = modrm;
      insn.has_modrm = true;
    }
    return insn;
  };
  auto imm_zv = [&]() {  // "z" immediate: 16 with 66h, else 32
    if (p.opsize66)
      c.skip(2);
    else
      c.skip(4);
  };

  // ---- VEX / EVEX (AVX) encodings ---------------------------------------
  // C5 = 2-byte VEX, C4 = 3-byte VEX, 62 = EVEX. In 32-bit mode these
  // bytes are LDS/LES/BOUND unless the following byte's mod field is 11
  // (the form the legacy instructions cannot take).
  const bool vex2 = op == 0xc5 && (mode == Mode::k64 || (c.peek() & 0xc0) == 0xc0);
  const bool vex3 = op == 0xc4 && (mode == Mode::k64 || (c.peek() & 0xc0) == 0xc0);
  const bool evex = op == 0x62 && (mode == Mode::k64 || (c.peek() & 0xc0) == 0xc0);
  if ((vex2 || vex3 || evex) && c.ok) {
    unsigned map = 1;  // implied 0F map for 2-byte VEX
    if (vex2) {
      c.u8();  // R.vvvv.L.pp
    } else if (vex3) {
      const std::uint8_t b1 = c.u8();  // RXB.mmmmm
      c.u8();                          // W.vvvv.L.pp
      map = b1 & 0x1f;
    } else {  // EVEX: three payload bytes
      const std::uint8_t b1 = c.u8();
      c.u8();
      c.u8();
      map = b1 & 0x07;
    }
    if (!c.ok || (map != 1 && map != 2 && map != 3)) return std::nullopt;
    const std::uint8_t vop = c.u8();
    if (!c.ok) return std::nullopt;
    opcode_full = static_cast<std::uint16_t>((map == 1   ? 0x0f00
                                              : map == 2 ? 0x0f38
                                                         : 0x0f3a) |
                                             (map == 1 ? vop : 0));
    insn.kind = Kind::kOther;
    // vzeroupper/vzeroall (map 1, 0x77) carry no ModRM; everything else
    // in the AVX maps does, and map 3 adds an imm8.
    if (!(map == 1 && vop == 0x77)) {
      if (!MODRM()) return std::nullopt;
      if (map == 3 ||
          (map == 1 && (vop == 0x70 || vop == 0x71 || vop == 0x72 || vop == 0x73 ||
                        vop == 0xc2 || vop == 0xc4 || vop == 0xc5 || vop == 0xc6)))
        c.skip(1);  // imm8
    }
    return finish();
  }

  // ---- Two-byte and three-byte maps -----------------------------------
  if (op == 0x0f) {
    std::uint8_t op2 = c.u8();
    if (!c.ok) return std::nullopt;
    opcode_full = static_cast<std::uint16_t>(0x0f00 | op2);

    if (op2 == 0x38 || op2 == 0x3a) {  // three-byte maps
      c.u8();                          // opcode3 (classified generically)
      if (!MODRM()) return std::nullopt;
      if (op2 == 0x3a) c.skip(1);      // imm8
      return finish();
    }

    if (op2 >= 0x80 && op2 <= 0x8f) {  // jcc rel32
      std::int64_t rel = p.opsize66 && mode == Mode::k32
                             ? static_cast<std::int16_t>(c.u16())
                             : sext32(c.u32());
      if (!c.ok) return std::nullopt;
      insn.kind = Kind::kJcc;
      insn.target = canon(addr + c.pos + static_cast<std::uint64_t>(rel), mode);
      return finish();
    }

    Op2Info info = op2_info(op2, p, mode);
    if (!info.valid) return std::nullopt;
    insn.kind = info.kind;
    if (info.modrm) {
      if (!MODRM()) return std::nullopt;
      if (op2 == 0x1e && p.f3 && modrm == 0xfa) insn.kind = Kind::kEndbr64;
      if (op2 == 0x1e && p.f3 && modrm == 0xfb) insn.kind = Kind::kEndbr32;
    }
    c.skip(static_cast<std::size_t>(info.imm));
    return finish();
  }

  // ---- One-byte map ----------------------------------------------------
  // ALU block 0x00-0x3F: the low 3 bits select the form.
  if (op <= 0x3f) {
    const std::uint8_t low = op & 7;
    switch (low) {
      case 0: case 1: case 2: case 3: {
        // op r/m,r or r,r/m forms — valid for all eight ALU groups.
        if (!MODRM()) return std::nullopt;
        insn.kind = Kind::kArith;
        return finish();
      }
      case 4:  // op al, imm8
        c.skip(1);
        insn.kind = Kind::kArith;
        return finish();
      case 5:  // op eax, immz
        imm_zv();
        insn.kind = Kind::kArith;
        return finish();
      case 6: case 7: {
        // push/pop seg, daa/das/aaa/aas — single byte, 32-bit mode only.
        if (mode == Mode::k64) return std::nullopt;
        insn.kind = Kind::kOther;
        return finish();
      }
    }
  }

  if (op >= 0x40 && op <= 0x4f) {
    // inc/dec reg: reachable only in 32-bit mode (REX consumed earlier).
    if (mode == Mode::k64) return std::nullopt;
    insn.kind = Kind::kArith;
    return finish();
  }

  if (op >= 0x50 && op <= 0x57) {
    insn.kind = Kind::kPush;
    insn.stack_delta = -word;
    insn.reg = static_cast<std::uint8_t>((op & 7) | ((p.rex & 1) << 3));
    return finish();
  }
  if (op >= 0x58 && op <= 0x5f) {
    insn.kind = Kind::kPop;
    insn.stack_delta = word;
    insn.reg = static_cast<std::uint8_t>((op & 7) | ((p.rex & 1) << 3));
    return finish();
  }

  switch (op) {
    case 0x60: case 0x61:  // pusha/popa (32-bit only)
      if (mode == Mode::k64) return std::nullopt;
      insn.kind = op == 0x60 ? Kind::kPush : Kind::kPop;
      insn.stack_delta = op == 0x60 ? -32 : 32;
      return finish();
    case 0x63:  // arpl (32) / movsxd (64)
      if (!MODRM()) return std::nullopt;
      insn.kind = Kind::kMov;
      return finish();
    case 0x68:  // push immz
      imm_zv();
      insn.kind = Kind::kPush;
      insn.stack_delta = -word;
      return finish();
    case 0x69:  // imul r, r/m, immz
      if (!MODRM()) return std::nullopt;
      imm_zv();
      insn.kind = Kind::kArith;
      return finish();
    case 0x6a:  // push imm8
      c.skip(1);
      insn.kind = Kind::kPush;
      insn.stack_delta = -word;
      return finish();
    case 0x6b:  // imul r, r/m, imm8
      if (!MODRM()) return std::nullopt;
      c.skip(1);
      insn.kind = Kind::kArith;
      return finish();
    default:
      break;
  }

  if (op >= 0x70 && op <= 0x7f) {  // jcc rel8
    std::int64_t rel = sext8(c.u8());
    if (!c.ok) return std::nullopt;
    insn.kind = Kind::kJcc;
    insn.target = canon(addr + c.pos + static_cast<std::uint64_t>(rel), mode);
    return finish();
  }

  switch (op) {
    case 0x80: case 0x82: {  // grp1 r/m8, imm8 (0x82: 32-bit alias)
      if (op == 0x82 && mode == Mode::k64) return std::nullopt;
      if (!MODRM()) return std::nullopt;
      c.skip(1);
      insn.kind = Kind::kArith;
      return finish();
    }
    case 0x81: {  // grp1 r/m, immz
      if (!MODRM()) return std::nullopt;
      std::uint32_t imm = 0;
      if (p.opsize66) {
        imm = c.u16();
      } else {
        imm = c.u32();
      }
      insn.kind = Kind::kArith;
      // add/sub rSP, imm — track the frame adjustment.
      if ((modrm >> 6) == 3 && (modrm & 7) == 4 && (p.rex & 1) == 0) {
        const std::uint8_t ext = (modrm >> 3) & 7;
        if (ext == 0) insn.stack_delta = static_cast<std::int32_t>(imm);
        if (ext == 5) insn.stack_delta = -static_cast<std::int32_t>(imm);
      }
      return finish();
    }
    case 0x83: {  // grp1 r/m, imm8
      if (!MODRM()) return std::nullopt;
      std::int64_t imm = sext8(c.u8());
      if (!c.ok) return std::nullopt;
      insn.kind = Kind::kArith;
      if ((modrm >> 6) == 3 && (modrm & 7) == 4 && (p.rex & 1) == 0) {
        const std::uint8_t ext = (modrm >> 3) & 7;
        if (ext == 0) insn.stack_delta = static_cast<std::int32_t>(imm);
        if (ext == 5) insn.stack_delta = -static_cast<std::int32_t>(imm);
      }
      return finish();
    }
    case 0x84: case 0x85:  // test
      if (!MODRM()) return std::nullopt;
      insn.kind = Kind::kArith;
      return finish();
    case 0x86: case 0x87:  // xchg
      if (!MODRM()) return std::nullopt;
      insn.kind = Kind::kOther;
      return finish();
    case 0x88: case 0x89: case 0x8a: case 0x8b:  // mov
      if (!MODRM()) return std::nullopt;
      insn.kind = Kind::kMov;
      return finish();
    case 0x8c: case 0x8e:  // mov seg
      if (!MODRM()) return std::nullopt;
      insn.kind = Kind::kMov;
      return finish();
    case 0x8d:  // lea
      if (!MODRM()) return std::nullopt;
      insn.kind = Kind::kLea;
      return finish();
    case 0x8f:  // pop r/m
      if (!MODRM()) return std::nullopt;
      insn.kind = Kind::kPop;
      insn.stack_delta = word;
      return finish();
    case 0x90:
      insn.kind = Kind::kNop;  // also PAUSE with F3
      return finish();
    case 0x91: case 0x92: case 0x93: case 0x94:
    case 0x95: case 0x96: case 0x97:
      insn.kind = Kind::kOther;  // xchg rAX, reg
      return finish();
    case 0x98: case 0x99: case 0x9b: case 0x9e: case 0x9f:
      return finish();  // cwde/cdq/wait/sahf/lahf
    case 0x9c:
      insn.kind = Kind::kPush;
      insn.stack_delta = -word;
      return finish();
    case 0x9d:
      insn.kind = Kind::kPop;
      insn.stack_delta = word;
      return finish();
    case 0xa0: case 0xa1: case 0xa2: case 0xa3: {  // mov moffs
      if (p.addrsize67) return std::nullopt;
      c.skip(mode == Mode::k64 ? 8 : 4);
      insn.kind = Kind::kMov;
      return finish();
    }
    case 0xa4: case 0xa5: case 0xa6: case 0xa7:
    case 0xaa: case 0xab: case 0xac: case 0xad:
    case 0xae: case 0xaf:
      return finish();  // string ops
    case 0xa8:  // test al, imm8
      c.skip(1);
      insn.kind = Kind::kArith;
      return finish();
    case 0xa9:  // test eax, immz
      imm_zv();
      insn.kind = Kind::kArith;
      return finish();
    default:
      break;
  }

  if (op >= 0xb0 && op <= 0xb7) {  // mov r8, imm8
    c.skip(1);
    insn.kind = Kind::kMov;
    return finish();
  }
  if (op >= 0xb8 && op <= 0xbf) {  // mov r, imm
    if (p.rex_w())
      c.skip(8);
    else if (p.opsize66)
      c.skip(2);
    else
      c.skip(4);
    insn.kind = Kind::kMov;
    return finish();
  }

  switch (op) {
    case 0xc0: case 0xc1:  // shift r/m, imm8
      if (!MODRM()) return std::nullopt;
      c.skip(1);
      insn.kind = Kind::kArith;
      return finish();
    case 0xc2:  // ret imm16
      c.skip(2);
      insn.kind = Kind::kRet;
      return finish();
    case 0xc3:
      insn.kind = Kind::kRet;
      insn.stack_delta = word;
      return finish();
    case 0xc4: case 0xc5:  // les/lds (32-bit); VEX in 64-bit (rejected)
      if (mode == Mode::k64) return std::nullopt;
      if (!MODRM()) return std::nullopt;
      return finish();
    case 0xc6:  // mov r/m8, imm8
      if (!MODRM()) return std::nullopt;
      c.skip(1);
      insn.kind = Kind::kMov;
      return finish();
    case 0xc7:  // mov r/m, immz
      if (!MODRM()) return std::nullopt;
      imm_zv();
      insn.kind = Kind::kMov;
      return finish();
    case 0xc8:  // enter imm16, imm8
      c.skip(3);
      insn.kind = Kind::kPush;
      return finish();
    case 0xc9:
      insn.kind = Kind::kLeave;
      return finish();
    case 0xca:  // retf imm16
      c.skip(2);
      insn.kind = Kind::kRet;
      return finish();
    case 0xcb:
      insn.kind = Kind::kRet;
      return finish();
    case 0xcc:
      insn.kind = Kind::kInt3;
      return finish();
    case 0xcd:  // int imm8
      c.skip(1);
      return finish();
    case 0xce:  // into
      if (mode == Mode::k64) return std::nullopt;
      return finish();
    case 0xcf:  // iret
      insn.kind = Kind::kRet;
      return finish();
    case 0xd0: case 0xd1: case 0xd2: case 0xd3:  // shifts
      if (!MODRM()) return std::nullopt;
      insn.kind = Kind::kArith;
      return finish();
    case 0xd4: case 0xd5:  // aam/aad imm8
      if (mode == Mode::k64) return std::nullopt;
      c.skip(1);
      return finish();
    case 0xd7:  // xlat
      return finish();
    case 0xd8: case 0xd9: case 0xda: case 0xdb:
    case 0xdc: case 0xdd: case 0xde: case 0xdf:  // x87
      if (!MODRM()) return std::nullopt;
      return finish();
    case 0xe0: case 0xe1: case 0xe2: case 0xe3: {  // loop/jcxz rel8
      std::int64_t rel = sext8(c.u8());
      if (!c.ok) return std::nullopt;
      insn.kind = Kind::kJcc;
      insn.target = canon(addr + c.pos + static_cast<std::uint64_t>(rel), mode);
      return finish();
    }
    case 0xe4: case 0xe5: case 0xe6: case 0xe7:  // in/out imm8
      c.skip(1);
      return finish();
    case 0xe8: {  // call rel32
      if (p.opsize66) return std::nullopt;  // rel16 form: never compiler-emitted
      std::int64_t rel = sext32(c.u32());
      if (!c.ok) return std::nullopt;
      insn.kind = Kind::kCallDirect;
      insn.target = canon(addr + c.pos + static_cast<std::uint64_t>(rel), mode);
      return finish();
    }
    case 0xe9: {  // jmp rel32
      if (p.opsize66) return std::nullopt;
      std::int64_t rel = sext32(c.u32());
      if (!c.ok) return std::nullopt;
      insn.kind = Kind::kJmpDirect;
      insn.target = canon(addr + c.pos + static_cast<std::uint64_t>(rel), mode);
      return finish();
    }
    case 0xea:  // far jmp ptr16:32
      if (mode == Mode::k64) return std::nullopt;
      c.skip(6);
      insn.kind = Kind::kJmpIndirect;
      return finish();
    case 0xeb: {  // jmp rel8
      std::int64_t rel = sext8(c.u8());
      if (!c.ok) return std::nullopt;
      insn.kind = Kind::kJmpDirect;
      insn.target = canon(addr + c.pos + static_cast<std::uint64_t>(rel), mode);
      return finish();
    }
    case 0xec: case 0xed: case 0xee: case 0xef:  // in/out dx
      return finish();
    case 0xf1:
      return finish();  // int1
    case 0xf4:
      insn.kind = Kind::kHlt;
      return finish();
    case 0xf5: case 0xf8: case 0xf9: case 0xfa:
    case 0xfb: case 0xfc: case 0xfd:
      return finish();  // flag ops
    case 0xf6: {  // grp3 r/m8
      if (!MODRM()) return std::nullopt;
      const std::uint8_t ext = (modrm >> 3) & 7;
      if (ext == 0 || ext == 1) c.skip(1);  // test imm8
      insn.kind = Kind::kArith;
      return finish();
    }
    case 0xf7: {  // grp3 r/m
      if (!MODRM()) return std::nullopt;
      const std::uint8_t ext = (modrm >> 3) & 7;
      if (ext == 0 || ext == 1) imm_zv();  // test immz
      insn.kind = Kind::kArith;
      return finish();
    }
    case 0xfe: {  // grp4: inc/dec r/m8
      if (!MODRM()) return std::nullopt;
      const std::uint8_t ext = (modrm >> 3) & 7;
      if (ext > 1) return std::nullopt;
      insn.kind = Kind::kArith;
      return finish();
    }
    case 0xff: {  // grp5
      if (!MODRM()) return std::nullopt;
      const std::uint8_t ext = (modrm >> 3) & 7;
      switch (ext) {
        case 0: case 1:
          insn.kind = Kind::kArith;  // inc/dec
          return finish();
        case 2: case 3:
          insn.kind = Kind::kCallIndirect;
          insn.notrack = p.seg3e;
          return finish();
        case 4: case 5:
          insn.kind = Kind::kJmpIndirect;
          insn.notrack = p.seg3e;
          return finish();
        case 6:
          insn.kind = Kind::kPush;
          insn.stack_delta = -word;
          return finish();
        default:
          return std::nullopt;
      }
    }
    default:
      break;
  }

  return std::nullopt;
}

}  // namespace fsr::x86
