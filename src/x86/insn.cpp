#include "x86/insn.hpp"

namespace fsr::x86 {

std::string kind_name(Kind k) {
  switch (k) {
    case Kind::kOther: return "other";
    case Kind::kEndbr32: return "endbr32";
    case Kind::kEndbr64: return "endbr64";
    case Kind::kCallDirect: return "call";
    case Kind::kCallIndirect: return "call*";
    case Kind::kJmpDirect: return "jmp";
    case Kind::kJmpIndirect: return "jmp*";
    case Kind::kJcc: return "jcc";
    case Kind::kRet: return "ret";
    case Kind::kLeave: return "leave";
    case Kind::kPush: return "push";
    case Kind::kPop: return "pop";
    case Kind::kNop: return "nop";
    case Kind::kHlt: return "hlt";
    case Kind::kInt3: return "int3";
    case Kind::kUd2: return "ud2";
    case Kind::kMov: return "mov";
    case Kind::kLea: return "lea";
    case Kind::kArith: return "arith";
  }
  return "?";
}

}  // namespace fsr::x86
