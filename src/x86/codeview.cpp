#include "x86/codeview.hpp"

#include <algorithm>
#include <cstring>

#include "util/deadline.hpp"
#include "util/stopwatch.hpp"
#include "x86/sweep.hpp"

namespace fsr::x86 {

std::size_t PosBitmap::find_first_at_or_after(std::size_t i) const {
  if (i >= size_) return npos;
  std::size_t w = i >> 6;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (i & 63));
  while (word == 0) {
    if (++w == words_.size()) return npos;
    word = words_[w];
  }
  return (w << 6) + static_cast<std::size_t>(__builtin_ctzll(word));
}

std::vector<std::size_t> PosBitmap::to_sorted_positions() const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      out.push_back((w << 6) + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

std::size_t CodeView::first_pos_at_or_after(std::uint64_t addr) const {
  const auto it = std::lower_bound(
      insns.begin(), insns.end(), addr,
      [](const Insn& insn, std::uint64_t a) { return insn.addr < a; });
  return static_cast<std::size_t>(it - insns.begin());
}

void build_substrate(CodeView& view) {
  if (view.has_substrate) return;
  util::Stopwatch watch;
  const std::size_t n = view.insns.size();

  view.stack_prefix.assign(n + 1, 0);
  view.prev_leave.assign(n, 0);
  view.next_stop.assign(n, static_cast<std::uint32_t>(n));
  view.target_slot.assign(n, 0);
  view.next_slot.assign(n, 0);
  view.kind_class.assign(n, 0);
  view.ret_positions = PosBitmap(n);
  view.leave_positions = PosBitmap(n);
  view.call_positions = PosBitmap(n);
  view.interior_words.assign(
      (static_cast<std::size_t>(view.text_end - view.text_begin) + 63) / 64, 0);

  const auto abandon = [&view] {
    // Deadline expired mid-build: leave the view substrate-free rather
    // than half-indexed — every consumer checks has_substrate and falls
    // back to the naive walks.
    view.stack_prefix.clear();
    view.prev_leave.clear();
    view.next_stop.clear();
    view.target_slot.clear();
    view.next_slot.clear();
    view.kind_class.clear();
    view.ret_positions = PosBitmap();
    view.leave_positions = PosBitmap();
    view.call_positions = PosBitmap();
    view.interior_words.clear();
    view.substrate_seconds = 0.0;
  };

  // Forward pass: prefix sums, segment pointers, flow slots, event
  // bitsets, interior-byte map.
  std::uint32_t last_leave = 0;  // position+1, 0 = none yet
  for (std::size_t i = 0; i < n; ++i) {
    if (util::deadline_expired()) return abandon();
    const Insn& insn = view.insns[i];
    view.stack_prefix[i + 1] = view.stack_prefix[i] + insn.stack_delta;
    view.kind_class[i] = static_cast<std::uint8_t>(insn.kind);
    switch (insn.kind) {
      case Kind::kLeave:
        last_leave = static_cast<std::uint32_t>(i + 1);
        view.leave_positions.set(i);
        break;
      case Kind::kRet:
        view.ret_positions.set(i);
        break;
      case Kind::kCallDirect:
      case Kind::kCallIndirect:
        view.call_positions.set(i);
        break;
      default:
        break;
    }
    view.prev_leave[i] = last_leave;

    if (insn.kind == Kind::kCallDirect || insn.kind == Kind::kJmpDirect ||
        insn.kind == Kind::kJcc) {
      const std::size_t t = view.pos_of(insn.target);
      if (t != CodeView::kNoInsn)
        view.target_slot[i] = static_cast<std::uint32_t>(t + 1);
    }
    const std::size_t next = view.pos_of(insn.end());
    if (next != CodeView::kNoInsn)
      view.next_slot[i] = static_cast<std::uint32_t>(next + 1);

    for (std::uint64_t b = insn.addr + 1; b < insn.end(); ++b) {
      const std::uint64_t off = b - view.text_begin;
      view.interior_words[static_cast<std::size_t>(off) >> 6] |=
          std::uint64_t{1} << (off & 63);
    }
  }

  // Backward pass: first walk-terminating instruction at or after each
  // position (FETCH's body walk stops at kRet or kJmpDirect).
  std::uint32_t stop = static_cast<std::uint32_t>(n);
  for (std::size_t i = n; i-- > 0;) {
    const Kind k = view.insns[i].kind;
    if (k == Kind::kRet || k == Kind::kJmpDirect)
      stop = static_cast<std::uint32_t>(i);
    view.next_stop[i] = stop;
  }

  view.has_substrate = true;
  view.substrate_seconds = watch.seconds();
}

CodeView build_code_view(std::span<const std::uint8_t> code, std::uint64_t base,
                         Mode mode, bool with_substrate) {
  CodeView view;
  view.text_begin = base;
  view.text_end = base + code.size();
  view.bytes.assign(code.begin(), code.end());
  view.mode = mode;

  SweepResult sweep = linear_sweep(code, base, mode);
  view.bad_bytes = sweep.bad_bytes.size();
  view.insns = std::move(sweep.insns);

  view.slots.assign(code.size(), 0);
  for (std::size_t i = 0; i < view.insns.size(); ++i)
    view.slots[static_cast<std::size_t>(view.insns[i].addr - base)] =
        static_cast<std::uint32_t>(i + 1);

  if (with_substrate) build_substrate(view);
  return view;
}

std::vector<std::uint64_t> AddrBitmap::to_sorted_addresses() const {
  std::vector<std::uint64_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      out.push_back(base_ + w * 64 + static_cast<std::uint64_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

std::vector<std::size_t> find_endbr_offsets(std::span<const std::uint8_t> bytes,
                                            Mode mode) {
  std::vector<std::size_t> out;
  if (bytes.size() < 4) return out;
  const std::uint8_t last = mode == Mode::k64 ? 0xfa : 0xfb;
  const std::uint8_t* data = bytes.data();
  std::size_t off = 0;
  const std::size_t limit = bytes.size() - 3;  // last possible start
  while (off < limit) {
    const void* hit = std::memchr(data + off, 0xf3, limit - off);
    if (hit == nullptr) break;
    off = static_cast<std::size_t>(static_cast<const std::uint8_t*>(hit) - data);
    if (data[off + 1] == 0x0f && data[off + 2] == 0x1e && data[off + 3] == last)
      out.push_back(off);
    ++off;
  }
  return out;
}

}  // namespace fsr::x86
