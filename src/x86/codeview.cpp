#include "x86/codeview.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/deadline.hpp"
#include "util/stopwatch.hpp"
#include "x86/decoder.hpp"

namespace fsr::x86 {

std::size_t PosBitmap::find_first_at_or_after(std::size_t i) const {
  if (i >= size_) return npos;
  std::size_t w = i >> 6;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (i & 63));
  while (word == 0) {
    if (++w == words_.size()) return npos;
    word = words_[w];
  }
  return (w << 6) + static_cast<std::size_t>(__builtin_ctzll(word));
}

std::vector<std::size_t> PosBitmap::to_sorted_positions() const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      out.push_back((w << 6) + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

std::size_t CodeView::first_pos_at_or_after(std::uint64_t addr) const {
  const auto it = std::lower_bound(
      insns.begin(), insns.end(), addr,
      [](const Insn& insn, std::uint64_t a) { return insn.addr < a; });
  return static_cast<std::size_t>(it - insns.begin());
}

namespace {

// Which event lists an instruction kind lands in. A flat lookup keeps
// the emit hot path to one load and one usually-false branch instead of
// a jump table whose indirect branch mispredicts on mixed code.
constexpr std::uint8_t kEvRet = 0x01;
constexpr std::uint8_t kEvLeave = 0x02;
constexpr std::uint8_t kEvCall = 0x04;
constexpr std::uint8_t kEvBranch = 0x08;  // direct call/jmp/jcc: has a target

constexpr std::array<std::uint8_t, 32> build_event_bits() {
  std::array<std::uint8_t, 32> t{};
  t[static_cast<std::size_t>(Kind::kRet)] = kEvRet;
  t[static_cast<std::size_t>(Kind::kLeave)] = kEvLeave;
  t[static_cast<std::size_t>(Kind::kCallDirect)] = kEvCall | kEvBranch;
  t[static_cast<std::size_t>(Kind::kCallIndirect)] = kEvCall;
  t[static_cast<std::size_t>(Kind::kJmpDirect)] = kEvBranch;
  t[static_cast<std::size_t>(Kind::kJcc)] = kEvBranch;
  return t;
}
constexpr auto kEventBits = build_event_bits();

/// Single-pass substrate emission. One emit() per instruction, in
/// stream order, over the decoded `insns` array — the columns are
/// byte-identical however the instructions were produced (sequential
/// or sharded sweep) because every emitted fact depends only on the
/// instruction and the emission state so far. Facts that need the
/// whole stream (branch-target slots, next_stop, the event bitmaps)
/// are recorded as deferred work and resolved in finalize().
class SubstrateBuilder {
 public:
  SubstrateBuilder(util::Arena& arena, std::size_t byte_count)
      : arena_(arena),
        rets_(arena),
        leaves_(arena),
        calls_(arena),
        branches_(arena),
        interior_(util::ArenaArray<std::uint64_t>::zeroed(arena,
                                                          (byte_count + 63) / 64)) {}

  void reserve(std::size_t n) {
    if (n > cap_) regrow(n);
  }

  void emit(std::size_t i, const Insn& insn, std::uint64_t text_begin) {
    // One capacity branch covers all four per-instruction columns; the
    // stores then go through __restrict locals so the compiler keeps
    // the cursors in registers instead of re-reading members after
    // every byte store (kind_class_ is unsigned char*, which would
    // otherwise be assumed to alias everything).
    if (i == cap_) [[unlikely]] regrow(cap_ == 0 ? 512 : cap_ * 2);
    size_ = i + 1;
    std::int64_t* __restrict stack_prefix = stack_prefix_;
    std::uint32_t* __restrict prev_leave = prev_leave_;
    std::uint32_t* __restrict next_slot = next_slot_;
    std::uint8_t* __restrict kind_class = kind_class_;

    stack_sum_ += insn.stack_delta;
    stack_prefix[i + 1] = stack_sum_;
    kind_class[i] = static_cast<std::uint8_t>(insn.kind);
    const std::uint8_t ev = kEventBits[static_cast<std::size_t>(insn.kind)];
    if (ev != 0) [[unlikely]] {
      const auto pos = static_cast<std::uint32_t>(i);
      if (ev & kEvRet) rets_.push_back(pos);
      if (ev & kEvLeave) {
        last_leave_ = pos + 1;
        leaves_.push_back(pos);
      }
      if (ev & kEvCall) calls_.push_back(pos);
      if (ev & kEvBranch) branches_.push_back(pos);
    }
    prev_leave[i] = last_leave_;

    // Fall-through slot, incrementally: the only instruction that can
    // start at insns[i-1].end() is insns[i] itself (addresses strictly
    // increase, and a resync byte there means nothing starts there), so
    // pos_of(end) reduces to one comparison against the previous end.
    next_slot[i] = 0;
    if (i > 0 && insn.addr == prev_end_)
      next_slot[i - 1] = static_cast<std::uint32_t>(i + 1);
    prev_end_ = insn.end();

    set_interior(insn.addr + 1 - text_begin, insn.end() - text_begin);
  }

  /// Resolve the deferred facts against the completed view (insns and
  /// slots must be final) and attach every column.
  void finalize(CodeView& view) {
    const std::size_t n = view.insns.size();
    if (cap_ == 0) regrow(8);  // empty stream still needs stack_prefix[0]
    if (!interior_.empty()) interior_.data()[word_idx_] |= word_;  // flush
    stack_prefix_[0] = 0;
    view.stack_prefix = util::ArenaArray<std::int64_t>(stack_prefix_, n + 1);
    view.prev_leave = util::ArenaArray<std::uint32_t>(prev_leave_, n);
    view.next_slot = util::ArenaArray<std::uint32_t>(next_slot_, n);
    view.kind_class = util::ArenaArray<std::uint8_t>(kind_class_, n);
    view.interior_words = interior_;

    view.ret_positions = PosBitmap(n);
    for (const std::uint32_t p : rets_.finish()) view.ret_positions.set(p);
    view.leave_positions = PosBitmap(n);
    for (const std::uint32_t p : leaves_.finish()) view.leave_positions.set(p);
    view.call_positions = PosBitmap(n);
    for (const std::uint32_t p : calls_.finish()) view.call_positions.set(p);

    // Branch-target slots need the complete flat index (targets point
    // both ways), so they resolve here rather than at emit time.
    auto target = util::ArenaArray<std::uint32_t>::zeroed(arena_, n);
    for (const std::uint32_t p : branches_.finish()) {
      const std::size_t t = view.pos_of(view.insns[p].target);
      if (t != CodeView::kNoInsn) target[p] = static_cast<std::uint32_t>(t + 1);
    }
    view.target_slot = target;

    // Backward pass: first walk-terminating instruction at or after
    // each position (FETCH's body walk stops at kRet or kJmpDirect).
    auto stops = util::ArenaArray<std::uint32_t>::uninit(arena_, n);
    auto stop = static_cast<std::uint32_t>(n);
    for (std::size_t i = n; i-- > 0;) {
      const std::uint8_t k = view.kind_class[i];
      if (k == static_cast<std::uint8_t>(Kind::kRet) ||
          k == static_cast<std::uint8_t>(Kind::kJmpDirect))
        stop = static_cast<std::uint32_t>(i);
      stops[i] = stop;
    }
    view.next_stop = stops;
  }

 private:
  /// Mark bytes [a, b) as instruction-interior. Successive instructions
  /// cover strictly increasing ranges, so the word being filled only
  /// ever advances; it is accumulated in a member the compiler keeps in
  /// a register across inlined emits and flushed when the range moves to
  /// a later word — one memory OR per 64 text bytes instead of a
  /// load-or-store dependency chain on every instruction.
  void set_interior(std::uint64_t a, std::uint64_t b) {
    if (b <= a) return;  // 1-byte instruction: no interior bytes
    std::uint64_t* __restrict words = interior_.data();
    const std::size_t w0 = static_cast<std::size_t>(a >> 6);
    const std::size_t w1 = static_cast<std::size_t>((b - 1) >> 6);
    const std::uint64_t m0 = ~std::uint64_t{0} << (a & 63);
    const std::uint64_t m1 = ~std::uint64_t{0} >> (63 - ((b - 1) & 63));
    if (w0 != word_idx_) {
      words[word_idx_] |= word_;
      word_idx_ = w0;
      word_ = 0;
    }
    if (w0 == w1) {
      word_ |= m0 & m1;
      return;
    }
    words[w0] |= word_ | m0;
    for (std::size_t w = w0 + 1; w < w1; ++w) words[w] = ~std::uint64_t{0};
    word_idx_ = w1;
    word_ = m1;
  }

  void regrow(std::size_t cap) {
    auto* stack_prefix = arena_.alloc<std::int64_t>(cap + 1);
    auto* prev_leave = arena_.alloc<std::uint32_t>(cap);
    auto* next_slot = arena_.alloc<std::uint32_t>(cap);
    auto* kind_class = arena_.alloc<std::uint8_t>(cap);
    if (size_ > 0) {
      std::memcpy(stack_prefix + 1, stack_prefix_ + 1, size_ * sizeof(std::int64_t));
      std::memcpy(prev_leave, prev_leave_, size_ * sizeof(std::uint32_t));
      std::memcpy(next_slot, next_slot_, size_ * sizeof(std::uint32_t));
      std::memcpy(kind_class, kind_class_, size_ * sizeof(std::uint8_t));
    }
    stack_prefix_ = stack_prefix;
    prev_leave_ = prev_leave;
    next_slot_ = next_slot;
    kind_class_ = kind_class;
    cap_ = cap;
  }

  util::Arena& arena_;
  // Per-instruction columns: parallel arrays under one capacity, grown
  // together (abandoned storage is reclaimed with the arena).
  std::int64_t* stack_prefix_ = nullptr;  // [cap_+1]; slot 0 set in finalize
  std::uint32_t* prev_leave_ = nullptr;
  std::uint32_t* next_slot_ = nullptr;
  std::uint8_t* kind_class_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  util::ArenaVec<std::uint32_t> rets_;
  util::ArenaVec<std::uint32_t> leaves_;
  util::ArenaVec<std::uint32_t> calls_;
  util::ArenaVec<std::uint32_t> branches_;  // call/jmp/jcc with direct targets
  util::ArenaArray<std::uint64_t> interior_;
  std::uint64_t word_ = 0;        // pending interior bits for words_[word_idx_]
  std::size_t word_idx_ = 0;
  std::int64_t stack_sum_ = 0;
  std::uint32_t last_leave_ = 0;  // position+1, 0 = none yet
  std::uint64_t prev_end_ = ~std::uint64_t{0};
};

/// Deadline expired mid-build: leave the view substrate-free rather
/// than half-indexed — every consumer checks has_substrate and falls
/// back to the naive walks. (Partially emitted arena storage is simply
/// abandoned; the arena reclaims it with the view.)
void abandon_substrate(CodeView& view) {
  view.stack_prefix.clear();
  view.prev_leave.clear();
  view.next_stop.clear();
  view.target_slot.clear();
  view.next_slot.clear();
  view.kind_class.clear();
  view.ret_positions = PosBitmap();
  view.leave_positions = PosBitmap();
  view.call_positions = PosBitmap();
  view.interior_words.clear();
  view.substrate_seconds = 0.0;
}

/// Move a sweep's output into the view and build the flat index.
void adopt_sweep(CodeView& view, SweepResult&& sweep, std::uint64_t base) {
  view.bad_bytes = sweep.bad_bytes.size();
  view.insns = std::move(sweep.insns);
  for (std::size_t i = 0; i < view.insns.size(); ++i)
    view.slots[static_cast<std::size_t>(view.insns[i].addr - base)] =
        static_cast<std::uint32_t>(i + 1);
}

/// The one-call build: decode + flat index in a first tight pass, then
/// the substrate columns in a second tight pass over the just-decoded
/// (and therefore cache-warm) insns array. Measured head-to-head on the
/// corpus, two small loops beat one mega-loop by ~1.5x: inlining the
/// whole table decoder *and* the column emission into a single loop
/// body spills the builder's running state (prefix sum, interior word,
/// previous end) to the stack on every iteration, while the split form
/// keeps each loop's state in registers and streams the columns
/// sequentially. On deadline expiry the decoded prefix (insns, slots,
/// bad-byte count) is kept and the substrate abandoned — the latched
/// expiry makes build_substrate abandon on its first poll.
void fused_build(CodeView& view, std::span<const std::uint8_t> code,
                 std::uint64_t base, Mode mode) {
  const std::uint8_t* data = code.data();
  const std::size_t size = code.size();
  constexpr std::size_t kProbe = 256;
  std::size_t bad = 0;
  std::size_t off = 0;
  std::uint32_t tick = 0;
  bool timed = false;
  while (off < size) {
    if ((tick++ & 1023u) == 0 && util::deadline_expired()) {
      timed = true;
      break;
    }
    if (view.insns.size() == kProbe) {
      const std::size_t avg = (off + kProbe - 1) / kProbe;  // bytes/insn
      view.insns.reserve(size / (avg > 0 ? avg : 1) + kProbe);
    }
    // Decode directly into the vector slot the instruction will occupy;
    // a failed decode pops the (possibly partially written) slot off.
    const std::size_t i = view.insns.size();
    view.insns.emplace_back();
    const std::uint32_t len = decode_at(data, size, off, base, mode, view.insns[i]);
    if (len > 0) {
      view.slots[off] = static_cast<std::uint32_t>(i + 1);
      off += len;
    } else {
      view.insns.pop_back();
      ++bad;
      ++off;  // resync: skip one byte and try again
    }
  }
  view.bad_bytes = bad;
  if (timed) return;
  build_substrate(view);
}

}  // namespace

void build_substrate(CodeView& view) {
  if (view.has_substrate) return;
  util::Stopwatch watch;
  if (!view.arena) view.arena = std::make_shared<util::Arena>();
  const std::size_t n = view.insns.size();
  SubstrateBuilder builder(*view.arena,
                           static_cast<std::size_t>(view.text_end - view.text_begin));
  builder.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Amortized poll: latched expiry (a binary already over budget)
    // still aborts on the very first iteration.
    if ((i & 1023u) == 0 && util::deadline_expired()) return abandon_substrate(view);
    builder.emit(i, view.insns[i], view.text_begin);
  }
  builder.finalize(view);
  view.has_substrate = true;
  view.substrate_seconds = watch.seconds();
}

CodeView build_code_view(std::span<const std::uint8_t> code, std::uint64_t base,
                         Mode mode, bool with_substrate,
                         const SweepParallel& par) {
  CodeView view;
  view.arena = std::make_shared<util::Arena>();
  view.text_begin = base;
  view.text_end = base + code.size();
  view.bytes.assign(code.begin(), code.end());
  view.mode = mode;
  view.slots = util::ArenaArray<std::uint32_t>::zeroed(*view.arena, code.size());

  if (par.shards > 1) {
    SweepResult sweep = linear_sweep_sharded(code, base, mode, par);
    const bool timed = sweep.timed_out;
    adopt_sweep(view, std::move(sweep), base);
    // On timeout skip the substrate outright: the sequential fused
    // build abandons it via the same latched expiry, but a shard's
    // expiry latches on the worker thread, so make it explicit here.
    if (with_substrate && !timed) build_substrate(view);
    return view;
  }
  if (!with_substrate) {
    adopt_sweep(view, linear_sweep(code, base, mode), base);
    return view;
  }
  fused_build(view, code, base, mode);
  return view;
}

CodeView build_code_view(std::span<const std::uint8_t> code, std::uint64_t base,
                         Mode mode, bool with_substrate) {
  return build_code_view(code, base, mode, with_substrate, SweepParallel{});
}

std::vector<std::uint64_t> AddrBitmap::to_sorted_addresses() const {
  std::vector<std::uint64_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      out.push_back(base_ + w * 64 + static_cast<std::uint64_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

std::vector<std::size_t> find_endbr_offsets(std::span<const std::uint8_t> bytes,
                                            Mode mode) {
  std::vector<std::size_t> out;
  if (bytes.size() < 4) return out;
  const std::uint8_t last = mode == Mode::k64 ? 0xfa : 0xfb;
  const std::uint8_t* data = bytes.data();
  std::size_t off = 0;
  const std::size_t limit = bytes.size() - 3;  // last possible start
  while (off < limit) {
    const void* hit = std::memchr(data + off, 0xf3, limit - off);
    if (hit == nullptr) break;
    off = static_cast<std::size_t>(static_cast<const std::uint8_t*>(hit) - data);
    if (data[off + 1] == 0x0f && data[off + 2] == 0x1e && data[off + 3] == last)
      out.push_back(off);
    ++off;
  }
  return out;
}

}  // namespace fsr::x86
