#include "x86/codeview.hpp"

#include <algorithm>
#include <cstring>

#include "x86/sweep.hpp"

namespace fsr::x86 {

std::size_t CodeView::first_pos_at_or_after(std::uint64_t addr) const {
  const auto it = std::lower_bound(
      insns.begin(), insns.end(), addr,
      [](const Insn& insn, std::uint64_t a) { return insn.addr < a; });
  return static_cast<std::size_t>(it - insns.begin());
}

CodeView build_code_view(std::span<const std::uint8_t> code, std::uint64_t base,
                         Mode mode) {
  CodeView view;
  view.text_begin = base;
  view.text_end = base + code.size();
  view.bytes.assign(code.begin(), code.end());
  view.mode = mode;

  SweepResult sweep = linear_sweep(code, base, mode);
  view.bad_bytes = sweep.bad_bytes.size();
  view.insns = std::move(sweep.insns);

  view.slots.assign(code.size(), 0);
  for (std::size_t i = 0; i < view.insns.size(); ++i)
    view.slots[static_cast<std::size_t>(view.insns[i].addr - base)] =
        static_cast<std::uint32_t>(i + 1);
  return view;
}

std::vector<std::uint64_t> AddrBitmap::to_sorted_addresses() const {
  std::vector<std::uint64_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      out.push_back(base_ + w * 64 + static_cast<std::uint64_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

std::vector<std::size_t> find_endbr_offsets(std::span<const std::uint8_t> bytes,
                                            Mode mode) {
  std::vector<std::size_t> out;
  if (bytes.size() < 4) return out;
  const std::uint8_t last = mode == Mode::k64 ? 0xfa : 0xfb;
  const std::uint8_t* data = bytes.data();
  std::size_t off = 0;
  const std::size_t limit = bytes.size() - 3;  // last possible start
  while (off < limit) {
    const void* hit = std::memchr(data + off, 0xf3, limit - off);
    if (hit == nullptr) break;
    off = static_cast<std::size_t>(static_cast<const std::uint8_t*>(hit) - data);
    if (data[off + 1] == 0x0f && data[off + 2] == 0x1e && data[off + 3] == last)
      out.push_back(off);
    ++off;
  }
  return out;
}

}  // namespace fsr::x86
