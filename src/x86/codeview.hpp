// Decode-once code view: one linear sweep of a text region, shared by
// every analyzer that runs on the same binary (FunSeeker and all the
// baseline tools derive their working sets from it).
//
// Address lookups go through a flat offset-indexed slot table
// (addr - text_begin -> instruction position) instead of a std::map, so
// CodeView::at() is O(1) — the traversal-heavy baselines query it once
// per visited instruction. AddrBitmap is the matching visited/function
// membership structure: one bit per text byte, replacing the O(log n)
// std::set node hops in the recursive-traversal fixed points.
//
// On top of the decoded stream sits the *analysis substrate*: immutable
// per-instruction facts computed once per binary so that analyses which
// used to re-decode or re-walk the stream per candidate become O(1)
// lookups —
//   - prefix sums of stack_delta plus a last-leave pointer per
//     position, turning FETCH-like's per-candidate frame-height walk
//     (the paper's §V-D quadratic hot path) into two array reads;
//   - a packed flow index (kind byte, branch-target slot, next-insn
//     slot) so traversals step position-to-position without re-deriving
//     addr -> position;
//   - position bitsets for ret/leave/call and a next-stop pointer for
//     O(1) "first return after this entry" queries.
// The substrate is derived purely from `insns`, so every query has a
// naive decode-and-walk oracle it must match bit-for-bit
// (tests/test_substrate.cpp proves this over the corpus and over
// fault-injected mutants).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/arena.hpp"
#include "x86/insn.hpp"
#include "x86/sweep.hpp"

namespace fsr::x86 {

/// One bit per *instruction position* (index into CodeView::insns) —
/// the position-space sibling of AddrBitmap. Traversal visited-sets are
/// position-keyed: 3-5x denser than byte-keyed bitmaps, so the per-
/// binary allocation and the cache footprint of the fixed-point loops
/// shrink accordingly.
class PosBitmap {
public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  PosBitmap() = default;
  explicit PosBitmap(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] bool test(std::size_t i) const {
    if (i >= size_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i) {
    if (i >= size_) return;
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  /// Previous value of the bit, setting it as a side effect.
  bool test_and_set(std::size_t i) {
    if (i >= size_) return true;  // out of range: behave as "already set"
    std::uint64_t& word = words_[i >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const bool prev = (word & mask) != 0;
    word |= mask;
    return prev;
  }

  /// Smallest set position >= i, or npos. Word-at-a-time + ctz, so the
  /// expected cost is O(1) for the dense event sets the substrate keeps.
  [[nodiscard]] std::size_t find_first_at_or_after(std::size_t i) const;

  /// All set positions, ascending.
  [[nodiscard]] std::vector<std::size_t> to_sorted_positions() const;

private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Immutable decoded view of one executable region.
struct CodeView {
  /// Position marker for "no instruction starts here".
  static constexpr std::size_t kNoInsn = static_cast<std::size_t>(-1);

  std::vector<Insn> insns;  // address order (linear-sweep output)
  /// Bump allocator owning the flat index and every substrate column.
  /// The arrays below are views into it; copies of the CodeView share
  /// it, and everything is freed wholesale when the last copy goes
  /// away. (insns/bytes stay std::vector — they are moved across API
  /// boundaries.)
  std::shared_ptr<util::Arena> arena;
  /// Flat address index: slots[addr - text_begin] is the position in
  /// `insns` of the instruction starting at addr, plus one; 0 means no
  /// instruction starts at that byte.
  util::ArenaArray<std::uint32_t> slots;
  std::uint64_t text_begin = 0;
  std::uint64_t text_end = 0;
  /// Raw section bytes, kept so analyses that re-decode (FETCH-like's
  /// faithful frame-height walks) can do so from the source of truth.
  std::vector<std::uint8_t> bytes;
  Mode mode = Mode::k64;
  /// Sweep resync count (bytes where decoding failed).
  std::size_t bad_bytes = 0;

  // ----------------------------------------------------------------
  // Analysis substrate (build_substrate; immutable afterwards).
  // All position vectors have insns.size() entries unless noted.

  /// True once the substrate is complete (fused into the sweep by
  /// build_code_view, or computed after the fact by build_substrate).
  /// False when the view was built without it or the build was
  /// abandoned on deadline expiry — users must fall back to the naive
  /// walks in that case.
  bool has_substrate = false;
  /// Wall-clock cost of the substrate finalize/fix-up work (reported
  /// inside the decode stage by eval::decode_shared, and as its own
  /// stage by bench_hotpath). In the fused build the per-instruction
  /// emission rides the decode loop, so this covers only the
  /// deferred passes (flow-slot resolution, next_stop, bitmaps).
  double substrate_seconds = 0.0;

  /// stack_prefix[i] = sum of stack_delta over insns[0..i) (size n+1).
  util::ArenaArray<std::int64_t> stack_prefix;
  /// prev_leave[i] = position+1 of the last kLeave at or before i,
  /// 0 when none — the segment break of the frame-height prefix sums.
  util::ArenaArray<std::uint32_t> prev_leave;
  /// next_stop[i] = first position >= i whose kind is kRet or
  /// kJmpDirect (the two ways a frame-height walk terminates), or
  /// insns.size() when none.
  util::ArenaArray<std::uint32_t> next_stop;
  /// Flow index: target_slot[i] = position+1 of the decoded in-text
  /// instruction a direct transfer targets (0 when none / not decoded);
  /// next_slot[i] = position+1 of the instruction at insns[i].end()
  /// (0 when fall-through lands on a bad byte or leaves the section).
  util::ArenaArray<std::uint32_t> target_slot;
  util::ArenaArray<std::uint32_t> next_slot;
  /// kind_class[i] = static_cast<uint8_t>(insns[i].kind): the one-byte
  /// column traversals branch on without pulling whole Insn records.
  util::ArenaArray<std::uint8_t> kind_class;
  /// Event-position bitsets (rank/select style queries).
  PosBitmap ret_positions;
  PosBitmap leave_positions;
  PosBitmap call_positions;
  /// One bit per text byte: set when the byte lies strictly *inside* a
  /// decoded instruction. A frame-height walk starting on such a byte
  /// diverges from the sweep stream (it re-decodes mid-instruction), so
  /// substrate queries refuse it and callers take the naive path.
  util::ArenaArray<std::uint64_t> interior_words;

  [[nodiscard]] bool in_text(std::uint64_t addr) const {
    return addr >= text_begin && addr < text_end;
  }

  /// Position in `insns` of the instruction starting at addr, or kNoInsn.
  [[nodiscard]] std::size_t pos_of(std::uint64_t addr) const {
    const std::uint64_t off = addr - text_begin;
    if (off >= slots.size()) return kNoInsn;
    const std::uint32_t slot = slots[static_cast<std::size_t>(off)];
    return slot == 0 ? kNoInsn : slot - 1;
  }

  [[nodiscard]] const Insn* at(std::uint64_t addr) const {
    const std::size_t pos = pos_of(addr);
    return pos == kNoInsn ? nullptr : &insns[pos];
  }

  /// Position of the first instruction with address >= addr (insns.size()
  /// when none). Used to iterate the instructions of an address range.
  [[nodiscard]] std::size_t first_pos_at_or_after(std::uint64_t addr) const;

  // ------------------------------------------------- substrate queries

  /// True when addr lies strictly inside a decoded instruction.
  [[nodiscard]] bool interior_byte(std::uint64_t addr) const {
    const std::uint64_t off = addr - text_begin;
    if (off >= static_cast<std::uint64_t>(text_end - text_begin)) return false;
    return (interior_words[static_cast<std::size_t>(off) >> 6] >> (off & 63)) & 1;
  }

  /// Start position for a frame-height walk beginning at `addr`: the
  /// first instruction at or after addr when the walk provably follows
  /// the sweep stream (addr is an instruction start or a sweep resync
  /// byte), kNoInsn when it would re-decode mid-instruction (callers
  /// must fall back to the naive decode-and-walk) or addr is outside
  /// the section.
  [[nodiscard]] std::size_t walk_start_pos(std::uint64_t addr) const {
    if (!in_text(addr) || interior_byte(addr)) return kNoInsn;
    return first_pos_at_or_after(addr);
  }

  /// Raw prefix-sum difference: sum of stack_delta over [i0, i1).
  [[nodiscard]] std::int64_t stack_sum(std::size_t i0, std::size_t i1) const {
    return stack_prefix[i1] - stack_prefix[i0];
  }

  /// Position of the last kLeave in [i0, i1), or kNoInsn.
  [[nodiscard]] std::size_t last_leave_in(std::size_t i0, std::size_t i1) const {
    if (i1 <= i0) return kNoInsn;
    const std::uint32_t p = prev_leave[i1 - 1];
    return (p != 0 && p - 1 >= i0) ? p - 1 : kNoInsn;
  }

  /// FETCH's stack_height over positions [i0, i1): the frame is zeroed
  /// *after* a leave's own delta is applied, so the height is the delta
  /// sum strictly after the last leave in the range.
  [[nodiscard]] std::int64_t stack_height_between(std::size_t i0,
                                                  std::size_t i1) const {
    if (i1 <= i0) return 0;
    const std::size_t leave = last_leave_in(i0, i1);
    return leave == kNoInsn ? stack_sum(i0, i1) : stack_sum(leave + 1, i1);
  }

  /// FETCH's body-walk height at position `stop`, walking from `start`:
  /// here the frame is zeroed *before* the leave's delta is applied, so
  /// the leave's own delta survives into the sum.
  [[nodiscard]] std::int64_t frame_height_before(std::size_t start,
                                                 std::size_t stop) const {
    if (stop <= start) return 0;
    const std::size_t leave = last_leave_in(start, stop);
    return leave == kNoInsn ? stack_sum(start, stop) : stack_sum(leave, stop);
  }

  /// First position >= pos whose instruction ends a frame-height body
  /// walk (kRet or kJmpDirect); insns.size() when none remain.
  [[nodiscard]] std::size_t next_stop_pos(std::size_t pos) const {
    return pos < next_stop.size() ? next_stop[pos] : insns.size();
  }
};

/// Sweep `code` (loaded at `base`) and build the flat index. With
/// `with_substrate` (the default) the substrate is *fused* into the
/// decode loop: each instruction's prefix sums, kind byte, event list
/// entries and interior bits are emitted as it decodes, and only the
/// deferred passes (flow slots, next_stop, bitmaps) run afterwards —
/// one pass over the bytes instead of decode-then-rescan.
/// bench_hotpath passes false to time the sweep alone.
CodeView build_code_view(std::span<const std::uint8_t> code, std::uint64_t base,
                         Mode mode, bool with_substrate = true);

/// As above, with intra-binary sweep sharding. `par.shards > 1` decodes
/// the region as concurrent shards stitched back to the bit-identical
/// sequential stream (see linear_sweep_sharded); the substrate is then
/// emitted over the stitched stream, so every derived structure is
/// byte-identical to the sequential build at any shard/thread count.
CodeView build_code_view(std::span<const std::uint8_t> code, std::uint64_t base,
                         Mode mode, bool with_substrate,
                         const SweepParallel& par);

/// Compute the analysis substrate for an already-swept view (idempotent;
/// one linear pass forward and one backward over `insns`). Cooperative:
/// polls the ambient util::Deadline and abandons the build — leaving
/// has_substrate false so callers use the naive paths — when a hostile
/// binary's budget expires mid-build.
void build_substrate(CodeView& view);

/// One bit per text byte, addressed by virtual address. The traversal
/// `visited` / `functions` sets of the baseline analyzers in bitmap
/// form: test/set are O(1), and the text span is known up front.
class AddrBitmap {
public:
  AddrBitmap() = default;
  explicit AddrBitmap(const CodeView& view)
      : base_(view.text_begin),
        size_(static_cast<std::size_t>(view.text_end - view.text_begin)),
        words_((size_ + 63) / 64, 0) {}
  AddrBitmap(std::uint64_t begin, std::uint64_t end)
      : base_(begin),
        size_(static_cast<std::size_t>(end - begin)),
        words_((size_ + 63) / 64, 0) {}

  [[nodiscard]] bool test(std::uint64_t addr) const {
    const std::uint64_t off = addr - base_;
    if (off >= size_) return false;
    return (words_[static_cast<std::size_t>(off) >> 6] >> (off & 63)) & 1;
  }

  /// Set the bit; out-of-range addresses are ignored.
  void set(std::uint64_t addr) {
    const std::uint64_t off = addr - base_;
    if (off >= size_) return;
    words_[static_cast<std::size_t>(off) >> 6] |= std::uint64_t{1} << (off & 63);
  }

  /// Previous value of the bit, setting it as a side effect.
  bool test_and_set(std::uint64_t addr) {
    const std::uint64_t off = addr - base_;
    if (off >= size_) return true;  // out of range: behave as "already set"
    std::uint64_t& word = words_[static_cast<std::size_t>(off) >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (off & 63);
    const bool prev = (word & mask) != 0;
    word |= mask;
    return prev;
  }

  /// All set addresses, ascending (for sorted result vectors).
  [[nodiscard]] std::vector<std::uint64_t> to_sorted_addresses() const;

private:
  std::uint64_t base_ = 0;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// All offsets in `bytes` where the 4-byte end-branch pattern
/// F3 0F 1E FA (64-bit) / FB (32-bit) begins, found with a memchr
/// prefilter on the F3 lead byte rather than a byte-at-a-time scan.
std::vector<std::size_t> find_endbr_offsets(std::span<const std::uint8_t> bytes,
                                            Mode mode);

}  // namespace fsr::x86
