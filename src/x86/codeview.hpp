// Decode-once code view: one linear sweep of a text region, shared by
// every analyzer that runs on the same binary (FunSeeker and all the
// baseline tools derive their working sets from it).
//
// Address lookups go through a flat offset-indexed slot table
// (addr - text_begin -> instruction position) instead of a std::map, so
// CodeView::at() is O(1) — the traversal-heavy baselines query it once
// per visited instruction. AddrBitmap is the matching visited/function
// membership structure: one bit per text byte, replacing the O(log n)
// std::set node hops in the recursive-traversal fixed points.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "x86/insn.hpp"

namespace fsr::x86 {

/// Immutable decoded view of one executable region.
struct CodeView {
  /// Position marker for "no instruction starts here".
  static constexpr std::size_t kNoInsn = static_cast<std::size_t>(-1);

  std::vector<Insn> insns;  // address order (linear-sweep output)
  /// Flat address index: slots[addr - text_begin] is the position in
  /// `insns` of the instruction starting at addr, plus one; 0 means no
  /// instruction starts at that byte.
  std::vector<std::uint32_t> slots;
  std::uint64_t text_begin = 0;
  std::uint64_t text_end = 0;
  /// Raw section bytes, kept so analyses that re-decode (FETCH-like's
  /// frame-height walks) can do so from the source of truth.
  std::vector<std::uint8_t> bytes;
  Mode mode = Mode::k64;
  /// Sweep resync count (bytes where decoding failed).
  std::size_t bad_bytes = 0;

  [[nodiscard]] bool in_text(std::uint64_t addr) const {
    return addr >= text_begin && addr < text_end;
  }

  /// Position in `insns` of the instruction starting at addr, or kNoInsn.
  [[nodiscard]] std::size_t pos_of(std::uint64_t addr) const {
    const std::uint64_t off = addr - text_begin;
    if (off >= slots.size()) return kNoInsn;
    const std::uint32_t slot = slots[static_cast<std::size_t>(off)];
    return slot == 0 ? kNoInsn : slot - 1;
  }

  [[nodiscard]] const Insn* at(std::uint64_t addr) const {
    const std::size_t pos = pos_of(addr);
    return pos == kNoInsn ? nullptr : &insns[pos];
  }

  /// Position of the first instruction with address >= addr (insns.size()
  /// when none). Used to iterate the instructions of an address range.
  [[nodiscard]] std::size_t first_pos_at_or_after(std::uint64_t addr) const;
};

/// Linear-sweep `code` (loaded at `base`) and build the flat index.
CodeView build_code_view(std::span<const std::uint8_t> code, std::uint64_t base,
                         Mode mode);

/// One bit per text byte, addressed by virtual address. The traversal
/// `visited` / `functions` sets of the baseline analyzers in bitmap
/// form: test/set are O(1), and the text span is known up front.
class AddrBitmap {
public:
  AddrBitmap() = default;
  explicit AddrBitmap(const CodeView& view)
      : base_(view.text_begin),
        size_(static_cast<std::size_t>(view.text_end - view.text_begin)),
        words_((size_ + 63) / 64, 0) {}
  AddrBitmap(std::uint64_t begin, std::uint64_t end)
      : base_(begin),
        size_(static_cast<std::size_t>(end - begin)),
        words_((size_ + 63) / 64, 0) {}

  [[nodiscard]] bool test(std::uint64_t addr) const {
    const std::uint64_t off = addr - base_;
    if (off >= size_) return false;
    return (words_[static_cast<std::size_t>(off) >> 6] >> (off & 63)) & 1;
  }

  /// Set the bit; out-of-range addresses are ignored.
  void set(std::uint64_t addr) {
    const std::uint64_t off = addr - base_;
    if (off >= size_) return;
    words_[static_cast<std::size_t>(off) >> 6] |= std::uint64_t{1} << (off & 63);
  }

  /// Previous value of the bit, setting it as a side effect.
  bool test_and_set(std::uint64_t addr) {
    const std::uint64_t off = addr - base_;
    if (off >= size_) return true;  // out of range: behave as "already set"
    std::uint64_t& word = words_[static_cast<std::size_t>(off) >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (off & 63);
    const bool prev = (word & mask) != 0;
    word |= mask;
    return prev;
  }

  /// All set addresses, ascending (for sorted result vectors).
  [[nodiscard]] std::vector<std::uint64_t> to_sorted_addresses() const;

private:
  std::uint64_t base_ = 0;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// All offsets in `bytes` where the 4-byte end-branch pattern
/// F3 0F 1E FA (64-bit) / FB (32-bit) begins, found with a memchr
/// prefilter on the F3 lead byte rather than a byte-at-a-time scan.
std::vector<std::size_t> find_endbr_offsets(std::span<const std::uint8_t> bytes,
                                            Mode mode);

}  // namespace fsr::x86
