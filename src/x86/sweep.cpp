#include "x86/sweep.hpp"

#include "x86/decoder.hpp"

namespace fsr::x86 {

SweepResult linear_sweep(std::span<const std::uint8_t> code, std::uint64_t base,
                         Mode mode) {
  SweepResult result;
  result.insns.reserve(code.size() / 4);
  std::size_t off = 0;
  while (off < code.size()) {
    auto insn = decode(code.subspan(off), base + off, mode);
    if (insn.has_value() && insn->length > 0) {
      result.insns.push_back(*insn);
      off += insn->length;
    } else {
      result.bad_bytes.push_back(base + off);
      ++off;  // resync: skip one byte and try again
    }
  }
  return result;
}

}  // namespace fsr::x86
