#include "x86/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>

#include "util/deadline.hpp"
#include "util/thread_pool.hpp"
#include "x86/codeview.hpp"
#include "x86/decoder.hpp"

namespace fsr::x86 {

namespace {

/// One decoded range of a (possibly sharded) sweep.
struct RangeSweep {
  std::vector<Insn> insns;
  std::vector<std::uint64_t> bad;
  /// First offset at or past `stop` the decode front reached: where the
  /// sequential stream continues after this range (the final
  /// instruction may extend past `stop`).
  std::size_t final_off = 0;
  bool timed_out = false;
};

/// Decode from `start`; only instructions *starting* before `stop` are
/// emitted, mirroring how the sequential stream crosses a shard
/// boundary mid-instruction. Bounds checks always run against the full
/// buffer, so a range decode at offset `off` is bit-identical to the
/// sequential decode at `off`.
RangeSweep sweep_range(std::span<const std::uint8_t> code, std::uint64_t base,
                       Mode mode, std::size_t start, std::size_t stop) {
  RangeSweep r;
  const std::uint8_t* data = code.data();
  const std::size_t size = code.size();
  // Instruction density varies ~2x across the corpus (tight O2 code
  // runs ~3 bytes/insn, O0 spills run past 5), so a fixed bytes/4 guess
  // both over- and under-reserves. Measure the first few hundred
  // decoded instructions and size the vectors from the observed
  // density. bad_bytes is empty for compiler-generated code, so it is
  // pre-sized only when the probe window actually saw resyncs.
  constexpr std::size_t kProbe = 256;
  std::size_t off = start;
  std::uint32_t tick = 0;
  while (off < stop) {
    // Deadline poll hoisted out of the per-instruction path: one
    // amortized check per 1024 decode steps keeps the cooperative
    // budget responsive (a hostile binary still stops within ~1k
    // single-byte resyncs) without a per-instruction TLS load.
    if ((tick++ & 1023u) == 0 && util::deadline_expired()) {
      r.timed_out = true;
      break;
    }
    if (r.insns.size() == kProbe) {
      const std::size_t decoded = off - start;
      const std::size_t avg = (decoded + kProbe - 1) / kProbe;  // bytes/insn
      const std::size_t range = stop - start;
      r.insns.reserve(range / (avg > 0 ? avg : 1) + kProbe);
      if (!r.bad.empty()) {
        const std::size_t denom = decoded > 0 ? decoded : 1;
        r.bad.reserve(r.bad.size() * range / denom + 16);
      }
    }
    // Decode straight into the slot the instruction will occupy; a
    // failed decode pops the (possibly partially written) slot back off.
    r.insns.emplace_back();
    const std::uint32_t len = decode_at(data, size, off, base, mode, r.insns.back());
    if (len > 0) {
      off += len;
    } else {
      r.insns.pop_back();
      r.bad.push_back(base + off);
      ++off;  // resync: skip one byte and try again
    }
  }
  r.final_off = off;
  return r;
}

}  // namespace

SweepResult linear_sweep(std::span<const std::uint8_t> code, std::uint64_t base,
                         Mode mode) {
  RangeSweep r = sweep_range(code, base, mode, 0, code.size());
  SweepResult out;
  out.insns = std::move(r.insns);
  out.bad_bytes = std::move(r.bad);
  out.timed_out = r.timed_out;
  return out;
}

std::vector<std::size_t> plan_sweep_shards(std::span<const std::uint8_t> code,
                                           Mode mode, int shards) {
  std::vector<std::size_t> cuts;
  // Below this a shard's stitch overhead rivals its decode cost.
  constexpr std::size_t kMinShardBytes = 4096;
  if (shards <= 1) return cuts;
  const std::size_t size = code.size();
  const std::size_t want =
      std::min<std::size_t>(static_cast<std::size_t>(shards), size / kMinShardBytes);
  if (want <= 1) return cuts;

  const std::vector<std::size_t> endbrs = find_endbr_offsets(code, mode);
  const std::size_t span_len = size / want;
  std::size_t prev = 0;
  for (std::size_t k = 1; k < want; ++k) {
    const std::size_t target = span_len * k;
    std::size_t cut = target;
    // Prefer the first endbr at or after the target: in a CET binary it
    // is a guaranteed instruction start, so the sequential stream hits
    // it and the stitch converges with zero fix-up decodes.
    const auto it = std::lower_bound(endbrs.begin(), endbrs.end(), target);
    if (it != endbrs.end() && *it < target + span_len / 2) {
      cut = *it;
    } else {
      // Fall back to the interior of a long single-byte padding run
      // (0x90 nop sleds, 0xCC int3 fill): an instruction starting
      // before the run reaches at most 14 bytes into it, after which
      // the one-byte padding instructions carry the sequential stream
      // to every later offset — so run_start + 16 is provably on the
      // stream. A raw `target` cut is still correct (the stitch
      // fix-up re-decodes the divergent prefix), just slower.
      constexpr std::size_t kRun = 32;
      const std::size_t scan_end = std::min(size, target + 4096);
      std::size_t run_start = target;
      std::size_t run_len = 0;
      std::uint8_t run_byte = 0;
      for (std::size_t j = target; j < scan_end; ++j) {
        const std::uint8_t b = code[j];
        if (b != 0x90 && b != 0xCC) {
          run_len = 0;
        } else if (run_len > 0 && b == run_byte) {
          ++run_len;
        } else {
          run_byte = b;
          run_start = j;
          run_len = 1;
        }
        if (run_len >= kRun) {
          cut = run_start + 16;
          break;
        }
      }
    }
    if (cut > prev && cut < size) {
      cuts.push_back(cut);
      prev = cut;
    }
  }
  return cuts;
}

SweepResult linear_sweep_sharded(std::span<const std::uint8_t> code,
                                 std::uint64_t base, Mode mode,
                                 const SweepParallel& par) {
  const std::vector<std::size_t> cuts = plan_sweep_shards(code, mode, par.shards);
  if (cuts.empty()) return linear_sweep(code, base, mode);

  // Claim-based scheduling: shard indices are claimed from an atomic
  // counter by pool workers *and* by the calling thread, so a saturated
  // or absent pool cannot deadlock — the caller alone drains every
  // shard in the worst case, and stray queued jobs that find nothing
  // left to claim exit immediately. The jobs hold the state alive via
  // shared_ptr because they may outlive this call.
  struct State {
    std::span<const std::uint8_t> code;
    std::uint64_t base = 0;
    Mode mode = Mode::k64;
    std::vector<std::size_t> cuts;
    std::vector<RangeSweep> parts;
    util::Deadline deadline;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->code = code;
  state->base = base;
  state->mode = mode;
  state->cuts = cuts;
  state->parts.resize(cuts.size() + 1);
  state->deadline = util::current_deadline();
  const std::size_t count = state->parts.size();

  const auto run_shards = [](const std::shared_ptr<State>& st,
                             bool install_deadline) {
    // Workers re-install the submitting binary's time budget; the
    // caller already has it as its ambient deadline.
    std::optional<util::ScopedDeadline> scope;
    if (install_deadline) scope.emplace(st->deadline);
    const std::size_t n = st->parts.size();
    for (;;) {
      const std::size_t s = st->next.fetch_add(1, std::memory_order_relaxed);
      if (s >= n) break;
      const std::size_t start = s == 0 ? 0 : st->cuts[s - 1];
      const std::size_t stop = s < st->cuts.size() ? st->cuts[s] : st->code.size();
      st->parts[s] = sweep_range(st->code, st->base, st->mode, start, stop);
      if (st->done.fetch_add(1) + 1 == n) {
        const std::lock_guard<std::mutex> lock(st->mu);
        st->cv.notify_all();
      }
    }
  };
  if (par.pool != nullptr) {
    for (std::size_t i = 1; i < count; ++i)
      par.pool->submit([state, run_shards] { run_shards(state, true); });
  }
  run_shards(state, false);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done.load() >= count; });
  }

  // Stitch. `cont` is the offset where the sequential stream continues
  // after everything emitted so far. Within each shard: drop shard
  // events the sequential stream skipped, re-decode the (usually empty)
  // divergent prefix until the shard has an event at exactly `cont`,
  // then splice the rest of the shard's stream verbatim — decoding is a
  // pure function of (bytes, offset), so from a common offset both
  // streams are identical.
  std::vector<RangeSweep>& parts = state->parts;
  SweepResult out;
  out.insns = std::move(parts[0].insns);
  out.bad_bytes = std::move(parts[0].bad);
  bool timed = parts[0].timed_out;
  std::size_t cont = parts[0].final_off;
  const std::uint8_t* data = code.data();
  const std::size_t size = code.size();
  std::uint32_t tick = 0;
  for (std::size_t s = 1; s < count && !timed; ++s) {
    RangeSweep& p = parts[s];
    const std::size_t stop = s < cuts.size() ? cuts[s] : size;
    std::size_t ii = 0;
    std::size_t bi = 0;
    const auto skip_past = [&](std::size_t off) {
      while (ii < p.insns.size() &&
             static_cast<std::size_t>(p.insns[ii].addr - base) < off)
        ++ii;
      while (bi < p.bad.size() &&
             static_cast<std::size_t>(p.bad[bi] - base) < off)
        ++bi;
    };
    skip_past(cont);
    while (cont < stop) {
      const std::size_t head_i =
          ii < p.insns.size() ? static_cast<std::size_t>(p.insns[ii].addr - base)
                              : size;
      const std::size_t head_b =
          bi < p.bad.size() ? static_cast<std::size_t>(p.bad[bi] - base) : size;
      if (std::min(head_i, head_b) == cont) break;  // streams converged
      if ((tick++ & 1023u) == 0 && util::deadline_expired()) {
        timed = true;
        break;
      }
      out.insns.emplace_back();
      const std::uint32_t len = decode_at(data, size, cont, base, mode, out.insns.back());
      if (len > 0) {
        cont += len;
      } else {
        out.insns.pop_back();
        out.bad_bytes.push_back(base + cont);
        ++cont;
      }
      skip_past(cont);
    }
    if (timed) break;
    // cont >= stop: the fix-up decoded (or an earlier instruction
    // crossed) the whole shard — its speculative stream is discarded.
    if (cont >= stop) continue;
    out.insns.insert(out.insns.end(), p.insns.begin() + ii, p.insns.end());
    out.bad_bytes.insert(out.bad_bytes.end(), p.bad.begin() + bi, p.bad.end());
    cont = p.final_off;
    timed = p.timed_out;
  }
  out.timed_out = timed;
  return out;
}

}  // namespace fsr::x86
