#include "x86/sweep.hpp"

#include "util/deadline.hpp"
#include "x86/decoder.hpp"

namespace fsr::x86 {

SweepResult linear_sweep(std::span<const std::uint8_t> code, std::uint64_t base,
                         Mode mode) {
  SweepResult result;
  // Instruction density varies ~2x across the corpus (tight O2 code
  // runs ~3 bytes/insn, O0 spills run past 5), so a fixed bytes/4 guess
  // both over- and under-reserves. Measure the first few hundred
  // decoded instructions and size the vector from the observed density;
  // bad_bytes stays lazy — it is empty for compiler-generated code.
  constexpr std::size_t kProbe = 256;
  std::size_t off = 0;
  while (off < code.size()) {
    if (util::deadline_expired()) {
      result.timed_out = true;
      break;
    }
    if (result.insns.size() == kProbe) {
      const std::size_t avg = (off + kProbe - 1) / kProbe;  // bytes/insn so far
      result.insns.reserve(code.size() / (avg > 0 ? avg : 1) + kProbe);
    }
    auto insn = decode(code.subspan(off), base + off, mode);
    if (insn.has_value() && insn->length > 0) {
      result.insns.push_back(*insn);
      off += insn->length;
    } else {
      result.bad_bytes.push_back(base + off);
      ++off;  // resync: skip one byte and try again
    }
  }
  return result;
}

}  // namespace fsr::x86
