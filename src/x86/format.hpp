// Text rendering of decoded instructions — enough for readable
// listings in the CLI and the examples (this is a function-identifier,
// not a full disassembler; operands beyond branch targets and
// push/pop registers are summarized).
#pragma once

#include <span>
#include <string>

#include "x86/insn.hpp"

namespace fsr::x86 {

/// Short mnemonic for the instruction ("endbr64", "call", "push %r12",
/// "mov", ...). Branch targets are appended in hex.
std::string mnemonic(const Insn& insn);

/// One full listing line: "  0x401000: f3 0f 1e fa        endbr64".
/// `code` must be the bytes of the region the instruction was decoded
/// from, based at `code_base`.
std::string format_line(const Insn& insn, std::span<const std::uint8_t> code,
                        std::uint64_t code_base);

}  // namespace fsr::x86
