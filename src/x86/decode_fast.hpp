// Table-driven decoder front-end (inline implementation).
//
// The checked decoder in decoder.cpp walks a Cursor that bounds-tests
// every byte; on the sweep hot path that is one compare-and-branch per
// *byte* of .text. This front-end replaces the walk with three 256-entry
// dispatch tables — a prefix classifier, the one-byte map, and the 0F
// map — whose entries carry the operand shape (modrm present, immediate
// length class, kind, stack-delta rule), so decoding one instruction is
// a table load plus straight-line length arithmetic with a single
// trailing bounds check.
//
// The implementation lives in a header, and decode_fast/decode_at are
// `inline`, so the sweep drivers (sweep.cpp, codeview.cpp) inline the
// whole decode into their per-instruction loop: no cross-TU call, no
// 32-byte struct return through memory per instruction. Include via
// x86/decoder.hpp, which supplies the checked decode() this fast path
// falls back to for VEX/EVEX rows and short tails.
//
// Safety argument for the unchecked reads: every structural read
// (prefixes, opcode bytes, ModRM, SIB, immediate loads) sits at an
// offset bounded by a small constant — the prefix scan refuses to pass
// index 14 (a run of 15+ prefixes cannot be part of a <=15-byte
// instruction, which is exactly when the checked decoder's length cap
// rejects too), and the widest tail after that is modrm+sib+disp32+imm32
// — so no read ever touches past index kFastDecodeSlack-1. The caller
// guarantees that many readable bytes. Any instruction whose parse
// *needed* a byte at or past `remaining` necessarily has final length
// > remaining, which the trailing check turns into the same failure the
// checked decoder reports for a truncated span. The differential oracle
// test (test_decode_table) enforces bit-identical results over the
// synth corpus and hostile mutants.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>

#include "x86/insn.hpp"

namespace fsr::x86 {

// Defined in decoder.cpp; declared here so the F_SPECIAL fallback and
// the short-tail path can reach it without a circular include.
std::optional<Insn> decode(std::span<const std::uint8_t> code, std::uint64_t addr,
                           Mode mode);

/// Bytes the table-driven fast path may touch beyond the start of an
/// instruction before its single trailing bounds check rejects the
/// result. decode_fast requires at least this many readable bytes at
/// `code`; the sweep satisfies it by switching to the checked decoder
/// for the final kFastDecodeSlack bytes of a section.
inline constexpr std::size_t kFastDecodeSlack = 32;

namespace detail {

static_assert(std::endian::native == std::endian::little,
              "decode_fast composes imm/disp with unaligned native loads");

// Prefix classifier: 0 = not a prefix (the byte is the opcode — the hot
// case, one predictable branch), otherwise which prefix flag to set.
enum PrefixClass : std::uint8_t {
  PFX_NONE,
  PFX_66,
  PFX_67,
  PFX_F3,
  PFX_3E,
  PFX_OTHER,  // lock / repne / other segment overrides: consumed, untracked
  PFX_REX,    // 40-4F: REX in long mode, inc/dec opcodes in 32-bit mode
};

constexpr std::array<std::uint8_t, 256> build_prefix_class() {
  std::array<std::uint8_t, 256> t{};
  t[0x66] = PFX_66;
  t[0x67] = PFX_67;
  t[0xf3] = PFX_F3;
  t[0x3e] = PFX_3E;
  for (const unsigned b : {0xf0u, 0xf2u, 0x2eu, 0x36u, 0x26u, 0x64u, 0x65u})
    t[b] = PFX_OTHER;
  for (unsigned b = 0x40; b <= 0x4f; ++b) t[b] = PFX_REX;
  return t;
}

// Entry flags: mode validity plus "a ModRM byte follows the opcode".
inline constexpr std::uint8_t kV32 = 0x01;
inline constexpr std::uint8_t kV64 = 0x02;
inline constexpr std::uint8_t kVBoth = kV32 | kV64;
inline constexpr std::uint8_t kM = 0x04;  // ModRM (+SIB/disp) follows

// Immediate length classes for F_SIMPLE rows.
enum ImmClass : std::uint8_t {
  I_NONE,
  I_8,   // imm8
  I_16,  // imm16 (ret/retf pop count)
  I_Z,   // immz: 2 with 66h, else 4
  I_3,   // enter imm16,imm8
  I_6,   // far pointer ptr16:32
};

// One-byte-map forms. F_SIMPLE covers every row fully described by
// flags+kind+imm+stack; the rest encode the handful of quirky rows.
enum Form : std::uint8_t {
  F_INVALID,
  F_SIMPLE,
  F_TWOBYTE,     // 0F escape
  F_SPECIAL,     // C4/C5/62: VEX/EVEX vs les/lds/bound — checked decoder
  F_PUSHREG,     // 50..57 (sets reg from REX.B)
  F_POPREG,      // 58..5F
  F_JCC8,        // 70..7F, E0..E3 rel8
  F_JMP8,        // EB rel8
  F_CALLREL32,   // E8 (66h form rejected)
  F_JMPREL32,    // E9 (66h form rejected)
  F_MOFFS,       // A0..A3 (67h rejected; 8-byte moffs in long mode)
  F_MOVIMMV,     // B8..BF (REX.W -> 8, 66h -> 2, else 4)
  F_GRP1_IMM8,   // 80/82
  F_GRP1_IMMZ,   // 81 (reads imm for the rSP frame-delta rule)
  F_GRP1_IMM8S,  // 83 (sign-extended imm8, same frame-delta rule)
  F_GRP3B,       // F6 (ext 0/1 add imm8)
  F_GRP3Z,       // F7 (ext 0/1 add immz)
  F_GRP4,        // FE (ext > 1 invalid)
  F_GRP5,        // FF (kind + NOTRACK + push delta by ext)
};

// 0F-map forms.
enum Form2 : std::uint8_t {
  F2_INVALID,
  F2_SIMPLE,  // flags + kind + trailing imm8 count
  F2_JCC,     // 80..8F rel32 (rel16 with 66h in 32-bit mode)
  F2_3B,      // 38/3A three-byte maps (generic: op3 + modrm [+ imm8])
  F2_NOP1E,   // 1E hint nop; F3-prefixed FA/FB are ENDBR64/ENDBR32
};

struct PEntry {
  std::uint8_t form = F_INVALID;
  std::uint8_t flags = 0;
  std::uint8_t kind = 0;
  std::uint8_t imm = I_NONE;
  std::int8_t stack = 0;  // 0, ±1 = ∓word, ±2 = ∓32 (pusha/popa)
};

struct P2Entry {
  std::uint8_t form = F2_INVALID;
  std::uint8_t flags = 0;
  std::uint8_t kind = 0;
  std::uint8_t imm8 = 0;
};

constexpr std::array<PEntry, 256> build_primary() {
  std::array<PEntry, 256> t{};
  auto set = [&](unsigned op, Form f, std::uint8_t flags,
                 Kind k = Kind::kOther, ImmClass imm = I_NONE,
                 std::int8_t stack = 0) {
    t[op] = PEntry{f, flags, static_cast<std::uint8_t>(k), imm, stack};
  };

  // ALU block 00-3F: low three bits select the operand form.
  for (unsigned op = 0; op <= 0x3f; ++op) {
    switch (op & 7) {
      case 0: case 1: case 2: case 3:
        set(op, F_SIMPLE, kVBoth | kM, Kind::kArith);
        break;
      case 4:
        set(op, F_SIMPLE, kVBoth, Kind::kArith, I_8);
        break;
      case 5:
        set(op, F_SIMPLE, kVBoth, Kind::kArith, I_Z);
        break;
      default:  // push/pop seg, daa/das/aaa/aas: 32-bit mode only
        set(op, F_SIMPLE, kV32, Kind::kOther);
        break;
    }
  }
  set(0x0f, F_TWOBYTE, kVBoth);
  // Prefix bytes are consumed by the prefix scan and never dispatch.
  t[0x26] = t[0x2e] = t[0x36] = t[0x3e] = PEntry{};

  for (unsigned op = 0x40; op <= 0x4f; ++op)  // inc/dec reg (REX in long mode)
    set(op, F_SIMPLE, kV32, Kind::kArith);
  for (unsigned op = 0x50; op <= 0x57; ++op)
    set(op, F_PUSHREG, kVBoth, Kind::kPush);
  for (unsigned op = 0x58; op <= 0x5f; ++op)
    set(op, F_POPREG, kVBoth, Kind::kPop);
  set(0x60, F_SIMPLE, kV32, Kind::kPush, I_NONE, -2);  // pusha
  set(0x61, F_SIMPLE, kV32, Kind::kPop, I_NONE, 2);    // popa
  set(0x62, F_SPECIAL, kVBoth);                        // EVEX / bound
  set(0x63, F_SIMPLE, kVBoth | kM, Kind::kMov);        // arpl / movsxd
  // 64-67 are prefixes; 6C-6F (ins/outs) are rejected like the checked path.
  set(0x68, F_SIMPLE, kVBoth, Kind::kPush, I_Z, -1);
  set(0x69, F_SIMPLE, kVBoth | kM, Kind::kArith, I_Z);
  set(0x6a, F_SIMPLE, kVBoth, Kind::kPush, I_8, -1);
  set(0x6b, F_SIMPLE, kVBoth | kM, Kind::kArith, I_8);
  for (unsigned op = 0x70; op <= 0x7f; ++op)
    set(op, F_JCC8, kVBoth, Kind::kJcc);
  set(0x80, F_GRP1_IMM8, kVBoth | kM, Kind::kArith);
  set(0x81, F_GRP1_IMMZ, kVBoth | kM, Kind::kArith);
  set(0x82, F_GRP1_IMM8, kV32 | kM, Kind::kArith);  // 32-bit alias of 80
  set(0x83, F_GRP1_IMM8S, kVBoth | kM, Kind::kArith);
  set(0x84, F_SIMPLE, kVBoth | kM, Kind::kArith);  // test
  set(0x85, F_SIMPLE, kVBoth | kM, Kind::kArith);
  set(0x86, F_SIMPLE, kVBoth | kM, Kind::kOther);  // xchg
  set(0x87, F_SIMPLE, kVBoth | kM, Kind::kOther);
  for (unsigned op = 0x88; op <= 0x8b; ++op)
    set(op, F_SIMPLE, kVBoth | kM, Kind::kMov);
  set(0x8c, F_SIMPLE, kVBoth | kM, Kind::kMov);  // mov seg
  set(0x8d, F_SIMPLE, kVBoth | kM, Kind::kLea);
  set(0x8e, F_SIMPLE, kVBoth | kM, Kind::kMov);
  set(0x8f, F_SIMPLE, kVBoth | kM, Kind::kPop, I_NONE, 1);  // pop r/m
  set(0x90, F_SIMPLE, kVBoth, Kind::kNop);                  // also PAUSE
  for (unsigned op = 0x91; op <= 0x97; ++op)
    set(op, F_SIMPLE, kVBoth, Kind::kOther);  // xchg rAX, reg
  set(0x98, F_SIMPLE, kVBoth, Kind::kOther);  // cwde
  set(0x99, F_SIMPLE, kVBoth, Kind::kOther);  // cdq
  set(0x9b, F_SIMPLE, kVBoth, Kind::kOther);  // wait
  set(0x9c, F_SIMPLE, kVBoth, Kind::kPush, I_NONE, -1);  // pushf
  set(0x9d, F_SIMPLE, kVBoth, Kind::kPop, I_NONE, 1);    // popf
  set(0x9e, F_SIMPLE, kVBoth, Kind::kOther);             // sahf
  set(0x9f, F_SIMPLE, kVBoth, Kind::kOther);             // lahf
  for (unsigned op = 0xa0; op <= 0xa3; ++op)
    set(op, F_MOFFS, kVBoth, Kind::kMov);
  for (unsigned op = 0xa4; op <= 0xa7; ++op)
    set(op, F_SIMPLE, kVBoth, Kind::kOther);  // movs/cmps
  set(0xa8, F_SIMPLE, kVBoth, Kind::kArith, I_8);  // test al, imm8
  set(0xa9, F_SIMPLE, kVBoth, Kind::kArith, I_Z);  // test eAX, immz
  for (unsigned op = 0xaa; op <= 0xaf; ++op)
    set(op, F_SIMPLE, kVBoth, Kind::kOther);  // stos/lods/scas
  for (unsigned op = 0xb0; op <= 0xb7; ++op)
    set(op, F_SIMPLE, kVBoth, Kind::kMov, I_8);  // mov r8, imm8
  for (unsigned op = 0xb8; op <= 0xbf; ++op)
    set(op, F_MOVIMMV, kVBoth, Kind::kMov);
  set(0xc0, F_SIMPLE, kVBoth | kM, Kind::kArith, I_8);  // shift imm8
  set(0xc1, F_SIMPLE, kVBoth | kM, Kind::kArith, I_8);
  set(0xc2, F_SIMPLE, kVBoth, Kind::kRet, I_16);         // ret imm16
  set(0xc3, F_SIMPLE, kVBoth, Kind::kRet, I_NONE, 1);    // ret
  set(0xc4, F_SPECIAL, kVBoth);                          // VEX3 / les
  set(0xc5, F_SPECIAL, kVBoth);                          // VEX2 / lds
  set(0xc6, F_SIMPLE, kVBoth | kM, Kind::kMov, I_8);
  set(0xc7, F_SIMPLE, kVBoth | kM, Kind::kMov, I_Z);
  set(0xc8, F_SIMPLE, kVBoth, Kind::kPush, I_3);  // enter (delta unknown)
  set(0xc9, F_SIMPLE, kVBoth, Kind::kLeave);
  set(0xca, F_SIMPLE, kVBoth, Kind::kRet, I_16);  // retf imm16
  set(0xcb, F_SIMPLE, kVBoth, Kind::kRet);        // retf
  set(0xcc, F_SIMPLE, kVBoth, Kind::kInt3);
  set(0xcd, F_SIMPLE, kVBoth, Kind::kOther, I_8);  // int imm8
  set(0xce, F_SIMPLE, kV32, Kind::kOther);         // into
  set(0xcf, F_SIMPLE, kVBoth, Kind::kRet);         // iret
  for (unsigned op = 0xd0; op <= 0xd3; ++op)
    set(op, F_SIMPLE, kVBoth | kM, Kind::kArith);  // shifts
  set(0xd4, F_SIMPLE, kV32, Kind::kOther, I_8);    // aam
  set(0xd5, F_SIMPLE, kV32, Kind::kOther, I_8);    // aad
  set(0xd7, F_SIMPLE, kVBoth, Kind::kOther);       // xlat
  for (unsigned op = 0xd8; op <= 0xdf; ++op)
    set(op, F_SIMPLE, kVBoth | kM, Kind::kOther);  // x87
  for (unsigned op = 0xe0; op <= 0xe3; ++op)
    set(op, F_JCC8, kVBoth, Kind::kJcc);  // loop/jcxz
  for (unsigned op = 0xe4; op <= 0xe7; ++op)
    set(op, F_SIMPLE, kVBoth, Kind::kOther, I_8);  // in/out imm8
  set(0xe8, F_CALLREL32, kVBoth, Kind::kCallDirect);
  set(0xe9, F_JMPREL32, kVBoth, Kind::kJmpDirect);
  set(0xea, F_SIMPLE, kV32, Kind::kJmpIndirect, I_6);  // far jmp
  set(0xeb, F_JMP8, kVBoth, Kind::kJmpDirect);
  for (unsigned op = 0xec; op <= 0xef; ++op)
    set(op, F_SIMPLE, kVBoth, Kind::kOther);  // in/out dx
  set(0xf1, F_SIMPLE, kVBoth, Kind::kOther);  // int1
  set(0xf4, F_SIMPLE, kVBoth, Kind::kHlt);
  set(0xf5, F_SIMPLE, kVBoth, Kind::kOther);  // cmc
  set(0xf6, F_GRP3B, kVBoth | kM, Kind::kArith);
  set(0xf7, F_GRP3Z, kVBoth | kM, Kind::kArith);
  for (unsigned op = 0xf8; op <= 0xfd; ++op)
    set(op, F_SIMPLE, kVBoth, Kind::kOther);  // flag ops
  set(0xfe, F_GRP4, kVBoth | kM, Kind::kArith);
  set(0xff, F_GRP5, kVBoth | kM);
  return t;
}

constexpr std::array<P2Entry, 256> build_twobyte() {
  std::array<P2Entry, 256> t{};
  auto set = [&](unsigned op, Form2 f, std::uint8_t flags,
                 Kind k = Kind::kOther, std::uint8_t imm8 = 0) {
    t[op] = P2Entry{f, flags, static_cast<std::uint8_t>(k), imm8};
  };

  for (unsigned op = 0x80; op <= 0x8f; ++op)
    set(op, F2_JCC, kVBoth, Kind::kJcc);
  set(0x38, F2_3B, kVBoth);
  set(0x3a, F2_3B, kVBoth);

  set(0x05, F2_SIMPLE, kV64);  // syscall
  set(0x06, F2_SIMPLE, kVBoth);
  set(0x08, F2_SIMPLE, kVBoth);
  set(0x09, F2_SIMPLE, kVBoth);
  set(0x0b, F2_SIMPLE, kVBoth, Kind::kUd2);
  for (unsigned op = 0x30; op <= 0x35; ++op)
    set(op, F2_SIMPLE, kVBoth);  // wrmsr..sysexit
  set(0x77, F2_SIMPLE, kVBoth);  // emms
  set(0xa2, F2_SIMPLE, kVBoth);  // cpuid
  set(0xa0, F2_SIMPLE, kVBoth);  // push/pop fs/gs
  set(0xa1, F2_SIMPLE, kVBoth);
  set(0xa8, F2_SIMPLE, kVBoth);
  set(0xa9, F2_SIMPLE, kVBoth);
  set(0x0d, F2_SIMPLE, kVBoth | kM);  // prefetch hints
  for (unsigned op = 0x18; op <= 0x1d; ++op)
    set(op, F2_SIMPLE, kVBoth | kM);
  set(0x1e, F2_NOP1E, kVBoth | kM, Kind::kNop);
  set(0x1f, F2_SIMPLE, kVBoth | kM, Kind::kNop);
  for (unsigned op = 0xc8; op <= 0xcf; ++op)
    set(op, F2_SIMPLE, kVBoth);  // bswap

  // ModRM rows (kind kOther unless noted).
  auto modrm_row = [&](unsigned lo, unsigned hi, Kind k = Kind::kOther) {
    for (unsigned op = lo; op <= hi; ++op) set(op, F2_SIMPLE, kVBoth | kM, k);
  };
  modrm_row(0x00, 0x01);  // grp6/grp7
  modrm_row(0x10, 0x17);  // SSE moves
  modrm_row(0x20, 0x23);  // mov CR/DR
  modrm_row(0x28, 0x2f);  // SSE conversions/compares
  modrm_row(0x40, 0x4f);  // cmov
  modrm_row(0x50, 0x6f);  // SSE arithmetic / packed
  modrm_row(0x74, 0x76);  // pcmpeq
  modrm_row(0x7c, 0x7f);  // hadd / movdq
  modrm_row(0x90, 0x9f);  // setcc
  modrm_row(0xa3, 0xa3);  // bt
  modrm_row(0xa5, 0xa5);  // shld cl
  modrm_row(0xab, 0xab);  // bts
  modrm_row(0xad, 0xad);  // shrd cl
  modrm_row(0xae, 0xae);  // grp15
  modrm_row(0xaf, 0xaf, Kind::kArith);  // imul
  modrm_row(0xb0, 0xb1);                // cmpxchg
  modrm_row(0xb3, 0xb3);                // btr
  modrm_row(0xb6, 0xb7, Kind::kMov);    // movzx
  modrm_row(0xbb, 0xbd);                // btc/bsf/bsr
  modrm_row(0xbe, 0xbf, Kind::kMov);    // movsx
  modrm_row(0xc0, 0xc1);                // xadd
  modrm_row(0xc3, 0xc3);                // movnti
  modrm_row(0xc7, 0xc7);                // grp9
  modrm_row(0xd0, 0xfe);                // SSE packed arithmetic

  // ModRM + imm8 rows.
  for (unsigned op : {0x70u, 0x71u, 0x72u, 0x73u, 0xa4u, 0xacu, 0xbau, 0xc2u,
                      0xc4u, 0xc5u, 0xc6u})
    set(op, F2_SIMPLE, kVBoth | kM, Kind::kOther, 1);
  return t;
}

inline constexpr auto kPrefixClass = build_prefix_class();
inline constexpr auto kPrimary = build_primary();
inline constexpr auto kTwoByte = build_twobyte();

constexpr std::uint64_t canon(std::uint64_t va, Mode mode) {
  return mode == Mode::k32 ? (va & 0xffffffffULL) : va;
}

}  // namespace detail

/// Table-driven decode of one instruction, written into `out`.
/// `remaining` is the number of in-bounds bytes at `code`; the caller
/// guarantees kFastDecodeSlack readable bytes there (reads beyond
/// `remaining` can happen mid-parse, but any instruction needing them
/// fails the trailing length check, so results are bit-identical to
/// decode()).
///
/// Contract: `out` must be value-initialized on entry (the decoder only
/// writes the fields a form uses — e.g. kind stays kOther for three-byte
/// rows, reg stays 0xff outside push/pop-reg). Returns the instruction
/// length, or 0 on failure — in which case `out` may hold partial
/// writes and the caller must discard it. The out-param shape is the
/// point: the sweeps decode straight into the vector slot the
/// instruction will live in, so there is no 32-byte struct returned
/// through memory and re-copied per instruction.
inline std::uint32_t decode_fast(const std::uint8_t* code, std::size_t remaining,
                                 std::uint64_t addr, Mode mode, Insn& out) {
  using namespace detail;
  std::size_t i = 0;
  std::uint8_t rex = 0;
  bool p66 = false, p67 = false, pf3 = false, p3e = false;
  for (;;) {
    // A 15-byte prefix run can never be part of a <=15-byte instruction,
    // so bail exactly where the checked decoder's length cap would.
    // This also bounds every later read: the widest parse after the
    // opcode (modrm+sib+disp32 then a 4-byte immediate load) stays
    // under kFastDecodeSlack.
    if (i >= 15) return 0;
    const std::uint8_t b = code[i];
    const std::uint8_t cls = kPrefixClass[b];
    if (cls == PFX_NONE) break;  // hot case: the byte is the opcode
    if (cls == PFX_REX) {
      if (mode != Mode::k64) break;  // 40-4F decode as inc/dec in 32-bit mode
      rex = b;  // REX must be the final prefix before the opcode
      ++i;
      break;
    }
    p66 |= cls == PFX_66;
    p67 |= cls == PFX_67;
    pf3 |= cls == PFX_F3;
    p3e |= cls == PFX_3E;
    ++i;
  }

  const std::uint8_t op = code[i++];
  const PEntry& e = kPrimary[op];
  const std::uint8_t mbit = mode == Mode::k64 ? kV64 : kV32;
  if (!(e.flags & mbit)) return 0;  // invalid rows have flags == 0

  out.addr = addr;
  const int word = mode == Mode::k64 ? 8 : 4;
  std::uint16_t opcode_full = op;
  std::uint8_t modrm = 0;
  bool has_modrm = false;

  auto read_mod = [&]() -> bool {
    // 16-bit addressing (67h in 32-bit mode) uses a different ModRM
    // layout; reject it exactly like the checked decoder.
    if (mode == Mode::k32 && p67) return false;
    modrm = code[i++];
    has_modrm = true;
    const std::uint8_t mod = modrm >> 6;
    const std::uint8_t rm = modrm & 7;
    if (mod != 3) {
      if (rm == 4) {
        const std::uint8_t sib = code[i++];
        if (mod == 0 && (sib & 7) == 5) i += 4;  // disp32 with no base
      }
      if (mod == 0 && rm == 5) {
        i += 4;
      } else if (mod == 1) {
        i += 1;
      } else if (mod == 2) {
        i += 4;
      }
    }
    return true;
  };
  auto load16 = [&]() -> std::uint16_t {
    std::uint16_t v;
    std::memcpy(&v, code + i, 2);
    i += 2;
    return v;
  };
  auto load32 = [&]() -> std::uint32_t {
    std::uint32_t v;
    std::memcpy(&v, code + i, 4);
    i += 4;
    return v;
  };
  auto imm_z = [&] { i += p66 ? 2 : 4; };
  auto finish = [&]() -> std::uint32_t {
    if (i > remaining || i > 15) return 0;
    out.length = static_cast<std::uint8_t>(i);
    out.opcode = opcode_full;
    if (has_modrm) {
      out.modrm = modrm;
      out.has_modrm = true;
    }
    return static_cast<std::uint32_t>(i);
  };

  switch (static_cast<Form>(e.form)) {
    case F_SIMPLE: {
      if ((e.flags & kM) && !read_mod()) return 0;
      switch (static_cast<ImmClass>(e.imm)) {
        case I_NONE: break;
        case I_8: i += 1; break;
        case I_16: i += 2; break;
        case I_Z: imm_z(); break;
        case I_3: i += 3; break;
        case I_6: i += 6; break;
      }
      out.kind = static_cast<Kind>(e.kind);
      if (e.stack == 1) {
        out.stack_delta = word;
      } else if (e.stack == -1) {
        out.stack_delta = -word;
      } else if (e.stack == 2) {
        out.stack_delta = 32;
      } else if (e.stack == -2) {
        out.stack_delta = -32;
      }
      return finish();
    }
    case F_PUSHREG:
    case F_POPREG:
      out.kind = static_cast<Kind>(e.kind);
      out.stack_delta = e.form == F_PUSHREG ? -word : word;
      out.reg = static_cast<std::uint8_t>((op & 7) | ((rex & 1) << 3));
      return finish();
    case F_JCC8:
    case F_JMP8: {
      const std::int64_t rel = static_cast<std::int8_t>(code[i++]);
      out.kind = static_cast<Kind>(e.kind);
      out.target = canon(addr + i + static_cast<std::uint64_t>(rel), mode);
      return finish();
    }
    case F_CALLREL32:
    case F_JMPREL32: {
      if (p66) return 0;  // rel16 form: never compiler-emitted
      const std::int64_t rel = static_cast<std::int32_t>(load32());
      out.kind = static_cast<Kind>(e.kind);
      out.target = canon(addr + i + static_cast<std::uint64_t>(rel), mode);
      return finish();
    }
    case F_MOFFS:
      if (p67) return 0;
      i += mode == Mode::k64 ? 8 : 4;
      out.kind = Kind::kMov;
      return finish();
    case F_MOVIMMV:
      i += (rex & 0x08) ? 8 : (p66 ? 2 : 4);
      out.kind = Kind::kMov;
      return finish();
    case F_GRP1_IMM8:
      if (!read_mod()) return 0;
      i += 1;
      out.kind = Kind::kArith;
      return finish();
    case F_GRP1_IMMZ: {
      if (!read_mod()) return 0;
      const std::uint32_t imm = p66 ? load16() : load32();
      out.kind = Kind::kArith;
      // add/sub rSP, imm — track the frame adjustment.
      if ((modrm >> 6) == 3 && (modrm & 7) == 4 && (rex & 1) == 0) {
        const std::uint8_t ext = (modrm >> 3) & 7;
        if (ext == 0) out.stack_delta = static_cast<std::int32_t>(imm);
        if (ext == 5) out.stack_delta = -static_cast<std::int32_t>(imm);
      }
      return finish();
    }
    case F_GRP1_IMM8S: {
      if (!read_mod()) return 0;
      const std::int64_t imm = static_cast<std::int8_t>(code[i++]);
      out.kind = Kind::kArith;
      if ((modrm >> 6) == 3 && (modrm & 7) == 4 && (rex & 1) == 0) {
        const std::uint8_t ext = (modrm >> 3) & 7;
        if (ext == 0) out.stack_delta = static_cast<std::int32_t>(imm);
        if (ext == 5) out.stack_delta = -static_cast<std::int32_t>(imm);
      }
      return finish();
    }
    case F_GRP3B: {
      if (!read_mod()) return 0;
      const std::uint8_t ext = (modrm >> 3) & 7;
      if (ext == 0 || ext == 1) i += 1;  // test imm8
      out.kind = Kind::kArith;
      return finish();
    }
    case F_GRP3Z: {
      if (!read_mod()) return 0;
      const std::uint8_t ext = (modrm >> 3) & 7;
      if (ext == 0 || ext == 1) imm_z();  // test immz
      out.kind = Kind::kArith;
      return finish();
    }
    case F_GRP4: {
      if (!read_mod()) return 0;
      if (((modrm >> 3) & 7) > 1) return 0;
      out.kind = Kind::kArith;
      return finish();
    }
    case F_GRP5: {
      if (!read_mod()) return 0;
      switch ((modrm >> 3) & 7) {
        case 0: case 1:
          out.kind = Kind::kArith;  // inc/dec
          return finish();
        case 2: case 3:
          out.kind = Kind::kCallIndirect;
          out.notrack = p3e;
          return finish();
        case 4: case 5:
          out.kind = Kind::kJmpIndirect;
          out.notrack = p3e;
          return finish();
        case 6:
          out.kind = Kind::kPush;
          out.stack_delta = -word;
          return finish();
        default:
          return 0;
      }
    }
    case F_TWOBYTE: {
      const std::uint8_t op2 = code[i++];
      const P2Entry& e2 = kTwoByte[op2];
      if (!(e2.flags & mbit)) return 0;
      opcode_full = static_cast<std::uint16_t>(0x0f00 | op2);
      switch (static_cast<Form2>(e2.form)) {
        case F2_SIMPLE: {
          if ((e2.flags & kM) && !read_mod()) return 0;
          i += e2.imm8;
          out.kind = static_cast<Kind>(e2.kind);
          return finish();
        }
        case F2_JCC: {
          const std::int64_t rel =
              p66 && mode == Mode::k32
                  ? static_cast<std::int16_t>(load16())
                  : static_cast<std::int32_t>(load32());
          out.kind = Kind::kJcc;
          out.target = canon(addr + i + static_cast<std::uint64_t>(rel), mode);
          return finish();
        }
        case F2_3B: {
          ++i;  // third opcode byte (classified generically)
          if (!read_mod()) return 0;
          if (op2 == 0x3a) ++i;  // imm8
          return finish();
        }
        case F2_NOP1E: {
          if (!read_mod()) return 0;
          out.kind = Kind::kNop;
          if (pf3 && modrm == 0xfa) out.kind = Kind::kEndbr64;
          if (pf3 && modrm == 0xfb) out.kind = Kind::kEndbr32;
          return finish();
        }
        case F2_INVALID:
        default:
          return 0;
      }
    }
    case F_SPECIAL: {
      // VEX/EVEX (and their 32-bit les/lds/bound shadows) are rare
      // enough that the checked decoder handles them outright; it is
      // bounds-safe on the true remaining span.
      const auto legacy = decode(std::span<const std::uint8_t>(code, remaining),
                                 addr, mode);
      if (legacy.has_value() && legacy->length > 0) {
        out = *legacy;
        return legacy->length;
      }
      return 0;
    }
    case F_INVALID:
    default:
      return 0;
  }
}

/// Dispatch helper for the sweep drivers: decode one instruction at
/// `off` of the `size`-byte buffer `data` loaded at `base`, into the
/// value-initialized `out`. Fast path while kFastDecodeSlack readable
/// bytes remain (everything but the last few bytes of a section),
/// checked decode for the tail. Returns the length, or 0 on failure
/// (`out` may hold partial writes the caller must discard).
inline std::uint32_t decode_at(const std::uint8_t* data, std::size_t size,
                               std::size_t off, std::uint64_t base, Mode mode,
                               Insn& out) {
  if (size - off >= kFastDecodeSlack)
    return decode_fast(data + off, size - off, base + off, mode, out);
  const auto insn = decode(
      std::span<const std::uint8_t>(data + off, size - off), base + off, mode);
  if (insn.has_value() && insn->length > 0) {
    out = *insn;
    return insn->length;
  }
  return 0;
}

}  // namespace fsr::x86
