// Length-exact x86 / x86-64 instruction decoder.
//
// Function identification does not need full operand semantics, but it
// does need exact instruction lengths (a linear sweep that drifts by a
// byte misclassifies everything after), correct classification of all
// control-flow transfers, and recognition of the CET end-branch markers
// and the NOTRACK prefix. The decoder covers the complete one-byte
// opcode map and the commonly emitted two/three-byte rows; anything it
// does not understand is reported as a decode failure, which the sweep
// driver treats as a one-byte resync (paper §IV-B).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "x86/insn.hpp"

namespace fsr::x86 {

/// Decode one instruction at `addr` from `code` (the bytes at and after
/// that address). Returns nullopt when the bytes do not form an
/// instruction this decoder understands.
std::optional<Insn> decode(std::span<const std::uint8_t> code, std::uint64_t addr,
                           Mode mode);

}  // namespace fsr::x86
