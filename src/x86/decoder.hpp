// Length-exact x86 / x86-64 instruction decoder.
//
// Function identification does not need full operand semantics, but it
// does need exact instruction lengths (a linear sweep that drifts by a
// byte misclassifies everything after), correct classification of all
// control-flow transfers, and recognition of the CET end-branch markers
// and the NOTRACK prefix. The decoder covers the complete one-byte
// opcode map and the commonly emitted two/three-byte rows; anything it
// does not understand is reported as a decode failure, which the sweep
// driver treats as a one-byte resync (paper §IV-B).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "x86/decode_fast.hpp"
#include "x86/insn.hpp"

namespace fsr::x86 {

/// Decode one instruction at `addr` from `code` (the bytes at and after
/// that address). Returns nullopt when the bytes do not form an
/// instruction this decoder understands.
///
/// This is the byte-at-a-time *checked* decoder: every read is bounds
/// tested, which makes it safe on arbitrary spans and the differential
/// oracle for the table-driven fast path (decode_fast/decode_at in
/// x86/decode_fast.hpp — tests compare the two instruction-by-
/// instruction; the sweeps use the fast path and fall back to this one
/// near the end of the buffer).
std::optional<Insn> decode(std::span<const std::uint8_t> code, std::uint64_t addr,
                           Mode mode);

/// Safe span wrapper over decode_fast (copies the tail into a padded
/// local buffer when the span is shorter than kFastDecodeSlack).
/// Bit-identical to decode() on every input — the property the
/// differential oracle test enforces.
std::optional<Insn> decode_table(std::span<const std::uint8_t> code,
                                 std::uint64_t addr, Mode mode);

}  // namespace fsr::x86
