// Span-safe wrapper over the inline table-driven fast path (the
// implementation itself lives in x86/decode_fast.hpp so the sweep
// drivers inline it into their hot loops).
#include <cstring>

#include "x86/decoder.hpp"

namespace fsr::x86 {

std::optional<Insn> decode_table(std::span<const std::uint8_t> code,
                                 std::uint64_t addr, Mode mode) {
  Insn insn;
  std::uint32_t len = 0;
  if (code.size() >= kFastDecodeSlack) {
    len = decode_fast(code.data(), code.size(), addr, mode, insn);
  } else {
    // Short span: satisfy the slack precondition with a zero-padded
    // copy. Padding bytes can be *read* mid-parse but never change the
    // result — any parse that consumed one fails the trailing
    // length-vs-remaining check.
    std::uint8_t buf[kFastDecodeSlack] = {0};
    if (!code.empty()) std::memcpy(buf, code.data(), code.size());
    len = decode_fast(buf, code.size(), addr, mode, insn);
  }
  if (len == 0) return std::nullopt;
  return insn;
}

}  // namespace fsr::x86
