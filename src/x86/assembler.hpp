// Minimal x86 / x86-64 assembler.
//
// The corpus generator lowers synthetic programs to machine code with
// this class. It supports exactly the instruction repertoire a compiler
// back-end emits into the binaries the paper studies: prologues and
// epilogues, ALU filler, direct calls/jumps with label fixups, indirect
// calls through registers and memory, NOTRACK-prefixed jump-table
// dispatch, CET end-branch markers, and multi-byte nop padding.
//
// Every emitted byte sequence must round-trip through fsr::x86::decode;
// the encoder/decoder agreement is enforced by property tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "x86/insn.hpp"

namespace fsr::x86 {

/// General-purpose register ids (hardware encoding order).
enum class Reg : std::uint8_t {
  kAx = 0, kCx = 1, kDx = 2, kBx = 3,
  kSp = 4, kBp = 5, kSi = 6, kDi = 7,
  kR8 = 8, kR9 = 9, kR10 = 10, kR11 = 11,
  kR12 = 12, kR13 = 13, kR14 = 14, kR15 = 15,
};

/// Condition codes (appended to 0x70 / 0x0F 0x80).
enum class Cond : std::uint8_t {
  kO = 0x0, kNo = 0x1, kB = 0x2, kAe = 0x3,
  kE = 0x4, kNe = 0x5, kBe = 0x6, kA = 0x7,
  kS = 0x8, kNs = 0x9, kP = 0xa, kNp = 0xb,
  kL = 0xc, kGe = 0xd, kLe = 0xe, kG = 0xf,
};

/// Opaque label handle.
class Label {
public:
  Label() = default;

private:
  friend class Assembler;
  explicit Label(std::uint32_t id) : id_(id + 1) {}
  std::uint32_t id_ = 0;  // 0 = invalid
};

class Assembler {
public:
  /// `base` is the virtual address of the first emitted byte.
  Assembler(Mode mode, std::uint64_t base) : mode_(mode), base_(base) {}

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::uint64_t base() const { return base_; }
  /// Virtual address of the next byte to be emitted.
  [[nodiscard]] std::uint64_t here() const { return base_ + buf_.size(); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  // --- labels -----------------------------------------------------------
  Label make_label();
  /// Bind a label to the current position.
  void bind(Label l);
  /// Bind a label to an arbitrary absolute address (e.g. data placed in
  /// another section whose layout is decided after code emission).
  void bind_to(Label l, std::uint64_t addr);
  /// Address a bound label resolves to; throws if unbound.
  [[nodiscard]] std::uint64_t address_of(Label l) const;

  // --- CET --------------------------------------------------------------
  /// endbr64 in 64-bit mode, endbr32 in 32-bit mode.
  void endbr();

  // --- prologue / epilogue ------------------------------------------------
  void push(Reg r);
  void pop(Reg r);
  void mov_rr(Reg dst, Reg src);
  void mov_ri(Reg dst, std::uint32_t imm);
  void sub_sp(std::uint32_t imm);
  void add_sp(std::uint32_t imm);
  void leave();
  void ret();
  void ret_imm(std::uint16_t imm);

  // --- data movement ------------------------------------------------------
  /// mov [rBP+disp8], src
  void mov_frame_reg(std::int8_t disp, Reg src);
  /// mov dst, [rBP+disp8]
  void mov_reg_frame(Reg dst, std::int8_t disp);
  /// Load the address of a label: RIP-relative LEA in 64-bit mode,
  /// absolute-immediate MOV in 32-bit mode (what non-PIE code does).
  void load_addr(Reg dst, Label target);

  // --- ALU ---------------------------------------------------------------
  void alu_rr(std::uint8_t group, Reg dst, Reg src);  // group 0..7: add,or,adc,sbb,and,sub,xor,cmp
  void add_rr(Reg dst, Reg src) { alu_rr(0, dst, src); }
  void sub_rr(Reg dst, Reg src) { alu_rr(5, dst, src); }
  void xor_rr(Reg dst, Reg src) { alu_rr(6, dst, src); }
  void cmp_rr(Reg dst, Reg src) { alu_rr(7, dst, src); }
  void test_rr(Reg a, Reg b);
  void cmp_ri8(Reg r, std::int8_t imm);
  void add_ri8(Reg r, std::int8_t imm);
  void imul_rr(Reg dst, Reg src);
  void shl_ri(Reg r, std::uint8_t count);

  // --- control flow --------------------------------------------------------
  void call(Label target);
  /// Direct call to a known absolute address (e.g. a PLT stub).
  void call_addr(std::uint64_t target);
  void jmp(Label target);
  void jmp_addr(std::uint64_t target);
  /// Two-byte short jump; requires the target to land within rel8 once
  /// resolved (throws at finish() otherwise).
  void jmp_short(Label target);
  void jcc(Cond cc, Label target);
  void jcc_short(Cond cc, Label target);
  void call_reg(Reg r);
  /// call [rBP+disp8] — indirect call through a spilled function pointer.
  void call_frame(std::int8_t disp);
  void jmp_reg(Reg r, bool notrack);
  /// jmp [mem] through a GOT-style absolute slot (32-bit: FF /4 disp32).
  void jmp_mem_abs(std::uint32_t abs_addr, bool notrack);
  /// jmp [base_reg*scale + disp32] — jump-table dispatch.
  void jmp_table(Reg index, Label table, bool notrack);

  // --- padding / misc -------------------------------------------------------
  /// GCC-style padding: one multi-byte nop of exactly n bytes (1..9).
  void nop(std::size_t n = 1);
  /// Pad with nops until `here()` is aligned.
  void align(std::size_t alignment);
  void int3();
  void hlt();
  void ud2();
  /// Raw bytes (for deliberately undecodable data-in-text experiments).
  void db(std::span<const std::uint8_t> bytes);

  /// Resolve all fixups and return the code. Throws fsr::EncodeError on
  /// unbound labels or out-of-range short branches.
  std::vector<std::uint8_t> finish();

private:
  struct Fixup {
    enum class Kind { kRel32, kRel8, kAbs32, kAbs64 };
    Kind kind;
    std::size_t offset;   // where the field lives in buf_
    std::uint32_t label;  // label id (internal, 1-based)
  };

  void rex_rb(bool w, Reg reg, Reg rm);  // REX for reg/rm forms (64-bit only)
  void rex_b(bool w, Reg rm);            // REX for opcode+r forms
  void modrm(std::uint8_t mod, std::uint8_t reg, std::uint8_t rm);
  [[nodiscard]] bool is64() const { return mode_ == Mode::k64; }
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void emit_rel32_fixup(Label l);

  Mode mode_;
  std::uint64_t base_;
  std::vector<std::uint8_t> buf_;
  std::vector<std::uint64_t> label_addrs_;  // indexed by id-1; UINT64_MAX = unbound
  std::vector<Fixup> fixups_;
};

}  // namespace fsr::x86
