// Instruction model shared by the decoder, the linear-sweep driver,
// FunSeeker, and the baseline analyzers.
//
// The model is deliberately partial: it captures exactly what function
// identification needs — instruction boundaries (lengths must be exact),
// control-flow classification, branch targets of direct transfers, the
// NOTRACK prefix, end-branch markers, and the stack-pointer delta used
// by the FETCH-like baseline's tail-call verification.
#pragma once

#include <cstdint>
#include <string>

namespace fsr::x86 {

/// Decoding mode: 32-bit protected mode (x86) or 64-bit long mode.
enum class Mode { k32, k64 };

/// Coarse instruction classification.
enum class Kind : std::uint8_t {
  kOther,         // decoded successfully; not relevant to control flow
  kEndbr32,       // F3 0F 1E FB
  kEndbr64,       // F3 0F 1E FA
  kCallDirect,    // E8 rel32
  kCallIndirect,  // FF /2, FF /3
  kJmpDirect,     // E9 rel32, EB rel8
  kJmpIndirect,   // FF /4, FF /5
  kJcc,           // 70..7F rel8, 0F 80..8F rel32
  kRet,           // C3, C2 imm16
  kLeave,         // C9
  kPush,          // 50+r, 68, 6A, FF /6
  kPop,           // 58+r, 8F /0
  kNop,           // 90, 0F 1F /0
  kHlt,           // F4
  kInt3,          // CC
  kUd2,           // 0F 0B
  kMov,
  kLea,
  kArith,         // add/sub/and/or/xor/cmp/test/imul/shift...
};

/// One decoded instruction. Field order packs the struct into 32 bytes
/// — the sweep materializes roughly one million of these per corpus
/// binary set, so the size is a measured decode-throughput lever.
struct Insn {
  std::uint64_t addr = 0;

  /// Absolute target of a direct transfer (call/jmp/jcc); 0 otherwise.
  std::uint64_t target = 0;

  /// Change to the stack pointer in bytes for the forms the FETCH-like
  /// baseline tracks (push/pop/sub-sp/add-sp/leave); 0 when unknown.
  std::int32_t stack_delta = 0;

  /// Raw opcode: one-byte value, or 0x0F00|second byte for the two-byte
  /// map (0x0F38/0x0F3A for the three-byte maps). Lets pattern-based
  /// analyzers (prologue signatures) match without re-decoding.
  std::uint16_t opcode = 0;

  std::uint8_t length = 0;
  Kind kind = Kind::kOther;

  /// Raw ModRM byte when the instruction has one.
  std::uint8_t modrm = 0;
  bool has_modrm = false;

  /// True when a 3E prefix decorates an indirect jmp/call (Intel CET
  /// NOTRACK: the target need not be an end-branch instruction).
  bool notrack = false;

  /// Register operand for single-register push/pop forms (0..15).
  std::uint8_t reg = 0xff;

  [[nodiscard]] bool is_endbr() const {
    return kind == Kind::kEndbr32 || kind == Kind::kEndbr64;
  }
  [[nodiscard]] bool is_direct_branch() const {
    return kind == Kind::kCallDirect || kind == Kind::kJmpDirect || kind == Kind::kJcc;
  }
  [[nodiscard]] bool is_call() const {
    return kind == Kind::kCallDirect || kind == Kind::kCallIndirect;
  }
  /// Instructions after which fall-through execution does not continue.
  [[nodiscard]] bool is_terminator() const {
    return kind == Kind::kRet || kind == Kind::kJmpDirect ||
           kind == Kind::kJmpIndirect || kind == Kind::kHlt || kind == Kind::kUd2;
  }
  [[nodiscard]] std::uint64_t end() const { return addr + length; }
};

/// Human-readable name of the kind (diagnostics and examples).
std::string kind_name(Kind k);

}  // namespace fsr::x86
