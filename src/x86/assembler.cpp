#include "x86/assembler.hpp"

namespace fsr::x86 {

namespace {

std::uint8_t lo3(Reg r) { return static_cast<std::uint8_t>(r) & 7; }
bool ext(Reg r) { return static_cast<std::uint8_t>(r) >= 8; }

}  // namespace

void Assembler::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Assembler::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Assembler::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

Label Assembler::make_label() {
  label_addrs_.push_back(UINT64_MAX);
  return Label(static_cast<std::uint32_t>(label_addrs_.size() - 1));
}

void Assembler::bind(Label l) { bind_to(l, here()); }

void Assembler::bind_to(Label l, std::uint64_t addr) {
  if (l.id_ == 0 || l.id_ > label_addrs_.size())
    throw UsageError("bind of invalid label");
  if (label_addrs_[l.id_ - 1] != UINT64_MAX)
    throw UsageError("label bound twice");
  label_addrs_[l.id_ - 1] = addr;
}

std::uint64_t Assembler::address_of(Label l) const {
  if (l.id_ == 0 || l.id_ > label_addrs_.size())
    throw UsageError("address_of invalid label");
  std::uint64_t a = label_addrs_[l.id_ - 1];
  if (a == UINT64_MAX) throw UsageError("address_of unbound label");
  return a;
}

void Assembler::rex_rb(bool w, Reg reg, Reg rm) {
  if (!is64()) {
    if (ext(reg) || ext(rm)) throw EncodeError("extended register in 32-bit mode");
    return;
  }
  std::uint8_t rex = 0x40;
  if (w) rex |= 0x08;
  if (ext(reg)) rex |= 0x04;
  if (ext(rm)) rex |= 0x01;
  if (rex != 0x40 || w) u8(rex);
}

void Assembler::rex_b(bool w, Reg rm) {
  if (!is64()) {
    if (ext(rm)) throw EncodeError("extended register in 32-bit mode");
    return;
  }
  std::uint8_t rex = 0x40;
  if (w) rex |= 0x08;
  if (ext(rm)) rex |= 0x01;
  if (rex != 0x40 || w) u8(rex);
}

void Assembler::modrm(std::uint8_t mod, std::uint8_t reg, std::uint8_t rm) {
  u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
}

void Assembler::endbr() {
  u8(0xf3);
  u8(0x0f);
  u8(0x1e);
  u8(is64() ? 0xfa : 0xfb);
}

void Assembler::push(Reg r) {
  if (ext(r)) u8(0x41);
  u8(static_cast<std::uint8_t>(0x50 + lo3(r)));
}

void Assembler::pop(Reg r) {
  if (ext(r)) u8(0x41);
  u8(static_cast<std::uint8_t>(0x58 + lo3(r)));
}

void Assembler::mov_rr(Reg dst, Reg src) {
  rex_rb(is64(), src, dst);
  u8(0x89);
  modrm(3, lo3(src), lo3(dst));
}

void Assembler::mov_ri(Reg dst, std::uint32_t imm) {
  // 32-bit immediate move; in 64-bit mode this zero-extends, which is
  // what compilers emit for small constants.
  rex_b(false, dst);
  u8(static_cast<std::uint8_t>(0xb8 + lo3(dst)));
  u32(imm);
}

void Assembler::sub_sp(std::uint32_t imm) {
  if (is64()) u8(0x48);
  if (imm <= 0x7f) {
    u8(0x83);
    modrm(3, 5, 4);
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm(3, 5, 4);
    u32(imm);
  }
}

void Assembler::add_sp(std::uint32_t imm) {
  if (is64()) u8(0x48);
  if (imm <= 0x7f) {
    u8(0x83);
    modrm(3, 0, 4);
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm(3, 0, 4);
    u32(imm);
  }
}

void Assembler::leave() { u8(0xc9); }
void Assembler::ret() { u8(0xc3); }

void Assembler::ret_imm(std::uint16_t imm) {
  u8(0xc2);
  u16(imm);
}

void Assembler::mov_frame_reg(std::int8_t disp, Reg src) {
  rex_rb(is64(), src, Reg::kBp);
  u8(0x89);
  modrm(1, lo3(src), 5);
  u8(static_cast<std::uint8_t>(disp));
}

void Assembler::mov_reg_frame(Reg dst, std::int8_t disp) {
  rex_rb(is64(), dst, Reg::kBp);
  u8(0x8b);
  modrm(1, lo3(dst), 5);
  u8(static_cast<std::uint8_t>(disp));
}

void Assembler::load_addr(Reg dst, Label target) {
  if (is64()) {
    // lea dst, [rip + rel32]
    rex_rb(true, dst, Reg::kBp);
    u8(0x8d);
    modrm(0, lo3(dst), 5);
    fixups_.push_back({Fixup::Kind::kRel32, buf_.size(), target.id_});
    u32(0);
  } else {
    // mov dst, imm32 (absolute address)
    u8(static_cast<std::uint8_t>(0xb8 + lo3(dst)));
    fixups_.push_back({Fixup::Kind::kAbs32, buf_.size(), target.id_});
    u32(0);
  }
}

void Assembler::alu_rr(std::uint8_t group, Reg dst, Reg src) {
  if (group > 7) throw UsageError("ALU group out of range");
  rex_rb(is64(), src, dst);
  u8(static_cast<std::uint8_t>((group << 3) | 0x01));  // op r/m, r
  modrm(3, lo3(src), lo3(dst));
}

void Assembler::test_rr(Reg a, Reg b) {
  rex_rb(is64(), b, a);
  u8(0x85);
  modrm(3, lo3(b), lo3(a));
}

void Assembler::cmp_ri8(Reg r, std::int8_t imm) {
  rex_b(is64(), r);
  u8(0x83);
  modrm(3, 7, lo3(r));
  u8(static_cast<std::uint8_t>(imm));
}

void Assembler::add_ri8(Reg r, std::int8_t imm) {
  rex_b(is64(), r);
  u8(0x83);
  modrm(3, 0, lo3(r));
  u8(static_cast<std::uint8_t>(imm));
}

void Assembler::imul_rr(Reg dst, Reg src) {
  rex_rb(is64(), dst, src);
  u8(0x0f);
  u8(0xaf);
  modrm(3, lo3(dst), lo3(src));
}

void Assembler::shl_ri(Reg r, std::uint8_t count) {
  rex_b(is64(), r);
  u8(0xc1);
  modrm(3, 4, lo3(r));
  u8(count);
}

void Assembler::emit_rel32_fixup(Label l) {
  fixups_.push_back({Fixup::Kind::kRel32, buf_.size(), l.id_});
  u32(0);
}

void Assembler::call(Label target) {
  u8(0xe8);
  emit_rel32_fixup(target);
}

void Assembler::call_addr(std::uint64_t target) {
  u8(0xe8);
  const std::uint64_t next = here() + 4;
  u32(static_cast<std::uint32_t>(target - next));
}

void Assembler::jmp(Label target) {
  u8(0xe9);
  emit_rel32_fixup(target);
}

void Assembler::jmp_addr(std::uint64_t target) {
  u8(0xe9);
  const std::uint64_t next = here() + 4;
  u32(static_cast<std::uint32_t>(target - next));
}

void Assembler::jmp_short(Label target) {
  u8(0xeb);
  fixups_.push_back({Fixup::Kind::kRel8, buf_.size(), target.id_});
  u8(0);
}

void Assembler::jcc(Cond cc, Label target) {
  u8(0x0f);
  u8(static_cast<std::uint8_t>(0x80 + static_cast<std::uint8_t>(cc)));
  emit_rel32_fixup(target);
}

void Assembler::jcc_short(Cond cc, Label target) {
  u8(static_cast<std::uint8_t>(0x70 + static_cast<std::uint8_t>(cc)));
  fixups_.push_back({Fixup::Kind::kRel8, buf_.size(), target.id_});
  u8(0);
}

void Assembler::call_reg(Reg r) {
  if (ext(r)) u8(0x41);
  u8(0xff);
  modrm(3, 2, lo3(r));
}

void Assembler::call_frame(std::int8_t disp) {
  u8(0xff);
  modrm(1, 2, 5);
  u8(static_cast<std::uint8_t>(disp));
}

void Assembler::jmp_reg(Reg r, bool notrack) {
  if (notrack) u8(0x3e);
  if (ext(r)) u8(0x41);
  u8(0xff);
  modrm(3, 4, lo3(r));
}

void Assembler::jmp_mem_abs(std::uint32_t abs_addr, bool notrack) {
  if (notrack) u8(0x3e);
  u8(0xff);
  if (is64()) {
    // [disp32] requires SIB form in 64-bit mode (mod=00 rm=100 base=101).
    modrm(0, 4, 4);
    u8(0x25);
  } else {
    modrm(0, 4, 5);
  }
  u32(abs_addr);
}

void Assembler::jmp_table(Reg index, Label table, bool notrack) {
  // jmp [index*word + table]
  if (notrack) u8(0x3e);
  if (is64() && ext(index)) u8(0x42);  // REX.X for the SIB index
  u8(0xff);
  modrm(0, 4, 4);  // rm=100 -> SIB
  const std::uint8_t scale = is64() ? 3 : 2;
  u8(static_cast<std::uint8_t>((scale << 6) | (lo3(index) << 3) | 5));  // base=101 -> disp32
  fixups_.push_back({Fixup::Kind::kAbs32, buf_.size(), table.id_});
  u32(0);
}

void Assembler::nop(std::size_t n) {
  // The canonical GAS multi-byte nop sequences.
  switch (n) {
    case 0: return;
    case 1: u8(0x90); return;
    case 2: u8(0x66); u8(0x90); return;
    case 3: u8(0x0f); u8(0x1f); u8(0x00); return;
    case 4: u8(0x0f); u8(0x1f); u8(0x40); u8(0x00); return;
    case 5: u8(0x0f); u8(0x1f); u8(0x44); u8(0x00); u8(0x00); return;
    case 6: u8(0x66); u8(0x0f); u8(0x1f); u8(0x44); u8(0x00); u8(0x00); return;
    case 7: u8(0x0f); u8(0x1f); u8(0x80); u32(0); return;
    case 8: u8(0x0f); u8(0x1f); u8(0x84); u8(0x00); u32(0); return;
    case 9: u8(0x66); u8(0x0f); u8(0x1f); u8(0x84); u8(0x00); u32(0); return;
    default:
      while (n > 9) {
        nop(9);
        n -= 9;
      }
      nop(n);
      return;
  }
}

void Assembler::align(std::size_t alignment) {
  if (alignment == 0) throw UsageError("alignment must be nonzero");
  while (here() % alignment != 0) {
    const std::size_t gap = alignment - static_cast<std::size_t>(here() % alignment);
    nop(gap > 9 ? 9 : gap);
  }
}

void Assembler::int3() { u8(0xcc); }
void Assembler::hlt() { u8(0xf4); }

void Assembler::ud2() {
  u8(0x0f);
  u8(0x0b);
}

void Assembler::db(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> Assembler::finish() {
  for (const auto& f : fixups_) {
    if (f.label == 0 || f.label > label_addrs_.size())
      throw EncodeError("fixup references invalid label");
    const std::uint64_t target = label_addrs_[f.label - 1];
    if (target == UINT64_MAX) throw EncodeError("fixup references unbound label");
    switch (f.kind) {
      case Fixup::Kind::kRel32: {
        const std::uint64_t next = base_ + f.offset + 4;
        const std::int64_t rel = static_cast<std::int64_t>(target) -
                                 static_cast<std::int64_t>(next);
        if (rel > INT32_MAX || rel < INT32_MIN)
          throw EncodeError("rel32 fixup out of range");
        const auto v = static_cast<std::uint32_t>(static_cast<std::int32_t>(rel));
        for (int i = 0; i < 4; ++i)
          buf_[f.offset + static_cast<std::size_t>(i)] =
              static_cast<std::uint8_t>(v >> (8 * i));
        break;
      }
      case Fixup::Kind::kRel8: {
        const std::uint64_t next = base_ + f.offset + 1;
        const std::int64_t rel = static_cast<std::int64_t>(target) -
                                 static_cast<std::int64_t>(next);
        if (rel > INT8_MAX || rel < INT8_MIN)
          throw EncodeError("rel8 fixup out of range");
        buf_[f.offset] = static_cast<std::uint8_t>(static_cast<std::int8_t>(rel));
        break;
      }
      case Fixup::Kind::kAbs32: {
        if (target > UINT32_MAX) throw EncodeError("abs32 fixup out of range");
        for (int i = 0; i < 4; ++i)
          buf_[f.offset + static_cast<std::size_t>(i)] =
              static_cast<std::uint8_t>(target >> (8 * i));
        break;
      }
      case Fixup::Kind::kAbs64: {
        for (int i = 0; i < 8; ++i)
          buf_[f.offset + static_cast<std::size_t>(i)] =
              static_cast<std::uint8_t>(target >> (8 * i));
        break;
      }
    }
  }
  fixups_.clear();
  return buf_;
}

}  // namespace fsr::x86
