#include "arm64/decoder.hpp"

namespace fsr::arm64 {

namespace {

std::int64_t sext(std::uint64_t value, unsigned bits) {
  const std::uint64_t sign = 1ULL << (bits - 1);
  return static_cast<std::int64_t>((value ^ sign)) - static_cast<std::int64_t>(sign);
}

}  // namespace

Insn decode(std::uint32_t w, std::uint64_t addr) {
  Insn insn;
  insn.addr = addr;
  insn.word = w;

  if (w == 0) {
    insn.kind = Kind::kUdf;
    return insn;
  }

  // Hint space: D503201F | imm7 << 5.
  if ((w & 0xfffff01f) == 0xd503201f) {
    const std::uint32_t imm7 = (w >> 5) & 0x7f;
    switch (imm7) {
      case 0: insn.kind = Kind::kNop; break;
      case 25: insn.kind = Kind::kPaciasp; break;
      case 32: insn.kind = Kind::kBtiPlain; break;
      case 34: insn.kind = Kind::kBtiC; break;
      case 36: insn.kind = Kind::kBtiJ; break;
      case 38: insn.kind = Kind::kBtiJc; break;
      default: insn.kind = Kind::kOther; break;  // other hints (yield, ...)
    }
    return insn;
  }

  // BL / B: imm26.
  if ((w >> 26) == 0x25 || (w >> 26) == 0x05) {
    insn.kind = (w >> 26) == 0x25 ? Kind::kBl : Kind::kB;
    insn.target = addr + static_cast<std::uint64_t>(sext(w & 0x03ffffff, 26) * 4);
    return insn;
  }

  // B.cond: 0101 0100 ... 0 cond.
  if ((w & 0xff000010) == 0x54000000) {
    insn.kind = Kind::kBCond;
    insn.target = addr + static_cast<std::uint64_t>(sext((w >> 5) & 0x7ffff, 19) * 4);
    return insn;
  }

  // CBZ / CBNZ (32- and 64-bit forms).
  if ((w & 0x7e000000) == 0x34000000) {
    insn.kind = Kind::kCbz;
    insn.target = addr + static_cast<std::uint64_t>(sext((w >> 5) & 0x7ffff, 19) * 4);
    return insn;
  }

  // TBZ / TBNZ.
  if ((w & 0x7e000000) == 0x36000000) {
    insn.kind = Kind::kTbz;
    insn.target = addr + static_cast<std::uint64_t>(sext((w >> 5) & 0x3fff, 14) * 4);
    return insn;
  }

  // RET / BR / BLR: D65F03C0-style (rn in bits 5..9).
  if ((w & 0xfffffc1f) == 0xd65f0000) {
    insn.kind = Kind::kRet;
    return insn;
  }
  if ((w & 0xfffffc1f) == 0xd61f0000) {
    insn.kind = Kind::kBr;
    return insn;
  }
  if ((w & 0xfffffc1f) == 0xd63f0000) {
    insn.kind = Kind::kBlr;
    return insn;
  }

  insn.kind = Kind::kOther;
  return insn;
}

}  // namespace fsr::arm64
