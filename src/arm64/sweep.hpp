// AArch64 linear sweep: fixed 4-byte stride, no resynchronization
// needed (the property that makes BTI-based identification even
// simpler than the x86 case, paper §VI).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arm64/insn.hpp"

namespace fsr::arm64 {

/// Decode `code` (loaded at `base`) word by word. A trailing partial
/// word, if any, is ignored. Honors the ambient util::Deadline: on
/// expiry the sweep stops early (expiry is latched, so callers can
/// detect the cutoff with util::deadline_expired_now()).
std::vector<Insn> linear_sweep(std::span<const std::uint8_t> code, std::uint64_t base);

}  // namespace fsr::arm64
