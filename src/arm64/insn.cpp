#include "arm64/insn.hpp"

namespace fsr::arm64 {

std::string kind_name(Kind k) {
  switch (k) {
    case Kind::kOther: return "other";
    case Kind::kNop: return "nop";
    case Kind::kBtiPlain: return "bti";
    case Kind::kBtiC: return "bti c";
    case Kind::kBtiJ: return "bti j";
    case Kind::kBtiJc: return "bti jc";
    case Kind::kPaciasp: return "paciasp";
    case Kind::kBl: return "bl";
    case Kind::kB: return "b";
    case Kind::kBCond: return "b.cond";
    case Kind::kCbz: return "cbz";
    case Kind::kTbz: return "tbz";
    case Kind::kRet: return "ret";
    case Kind::kBr: return "br";
    case Kind::kBlr: return "blr";
    case Kind::kUdf: return "udf";
  }
  return "?";
}

}  // namespace fsr::arm64
