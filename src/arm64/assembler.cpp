#include "arm64/assembler.hpp"

namespace fsr::arm64 {

namespace {

constexpr Reg kZr = 31;

std::uint32_t hint(std::uint32_t imm7) { return 0xd503201f | (imm7 << 5); }

}  // namespace

Label Assembler::make_label() {
  label_addrs_.push_back(UINT64_MAX);
  return Label(static_cast<std::uint32_t>(label_addrs_.size() - 1));
}

void Assembler::bind(Label l) { bind_to(l, here()); }

void Assembler::bind_to(Label l, std::uint64_t addr) {
  if (l.id_ == 0 || l.id_ > label_addrs_.size()) throw UsageError("bind of invalid label");
  if (label_addrs_[l.id_ - 1] != UINT64_MAX) throw UsageError("label bound twice");
  label_addrs_[l.id_ - 1] = addr;
}

std::uint64_t Assembler::address_of(Label l) const {
  if (l.id_ == 0 || l.id_ > label_addrs_.size())
    throw UsageError("address_of invalid label");
  const std::uint64_t a = label_addrs_[l.id_ - 1];
  if (a == UINT64_MAX) throw UsageError("address_of unbound label");
  return a;
}

void Assembler::bti(Kind which) {
  switch (which) {
    case Kind::kBtiPlain: word(hint(32)); return;
    case Kind::kBtiC: word(hint(34)); return;
    case Kind::kBtiJ: word(hint(36)); return;
    case Kind::kBtiJc: word(hint(38)); return;
    default: throw UsageError("bti() takes a BTI kind");
  }
}

void Assembler::paciasp() { word(hint(25)); }
void Assembler::autiasp() { word(hint(29)); }
void Assembler::nop() { word(hint(0)); }

void Assembler::stp_fp_lr_pre() { word(0xa9bf7bfd); }
void Assembler::ldp_fp_lr_post() { word(0xa8c17bfd); }
void Assembler::mov_fp_sp() { word(0x910003fd); }

void Assembler::sub_sp(std::uint16_t imm12) {
  word(0xd1000000 | (static_cast<std::uint32_t>(imm12 & 0xfff) << 10) | (31u << 5) | 31u);
}

void Assembler::add_sp(std::uint16_t imm12) {
  word(0x91000000 | (static_cast<std::uint32_t>(imm12 & 0xfff) << 10) | (31u << 5) | 31u);
}

void Assembler::movz(Reg rd, std::uint16_t imm16) {
  word(0xd2800000 | (static_cast<std::uint32_t>(imm16) << 5) | (rd & 31));
}

void Assembler::mov_rr(Reg rd, Reg rm) {
  // orr rd, xzr, rm
  word(0xaa000000 | (static_cast<std::uint32_t>(rm & 31) << 16) |
       (static_cast<std::uint32_t>(kZr) << 5) | (rd & 31));
}

void Assembler::add_rr(Reg rd, Reg rn, Reg rm) {
  word(0x8b000000 | (static_cast<std::uint32_t>(rm & 31) << 16) |
       (static_cast<std::uint32_t>(rn & 31) << 5) | (rd & 31));
}

void Assembler::sub_rr(Reg rd, Reg rn, Reg rm) {
  word(0xcb000000 | (static_cast<std::uint32_t>(rm & 31) << 16) |
       (static_cast<std::uint32_t>(rn & 31) << 5) | (rd & 31));
}

void Assembler::eor_rr(Reg rd, Reg rn, Reg rm) {
  word(0xca000000 | (static_cast<std::uint32_t>(rm & 31) << 16) |
       (static_cast<std::uint32_t>(rn & 31) << 5) | (rd & 31));
}

void Assembler::mul_rr(Reg rd, Reg rn, Reg rm) {
  // madd rd, rn, rm, xzr
  word(0x9b000000 | (static_cast<std::uint32_t>(rm & 31) << 16) |
       (static_cast<std::uint32_t>(kZr) << 10) |
       (static_cast<std::uint32_t>(rn & 31) << 5) | (rd & 31));
}

void Assembler::add_ri(Reg rd, Reg rn, std::uint16_t imm12) {
  word(0x91000000 | (static_cast<std::uint32_t>(imm12 & 0xfff) << 10) |
       (static_cast<std::uint32_t>(rn & 31) << 5) | (rd & 31));
}

void Assembler::cmp_ri(Reg rn, std::uint16_t imm12) {
  // subs xzr, rn, #imm
  word(0xf1000000 | (static_cast<std::uint32_t>(imm12 & 0xfff) << 10) |
       (static_cast<std::uint32_t>(rn & 31) << 5) | kZr);
}

void Assembler::load_addr(Reg rd, Label target) {
  fixups_.push_back({Fixup::Kind::kAdrp, words_.size(), target.id_});
  word(0x90000000 | (rd & 31));  // adrp rd, <page>
  fixups_.push_back({Fixup::Kind::kAddLo12, words_.size(), target.id_});
  word(0x91000000 | (static_cast<std::uint32_t>(rd & 31) << 5) | (rd & 31));  // add rd, rd, #lo12
}

void Assembler::emit_branch(std::uint32_t opcode, Label target) {
  fixups_.push_back({Fixup::Kind::kImm26, words_.size(), target.id_});
  word(opcode);
}

void Assembler::bl(Label target) { emit_branch(0x94000000, target); }
void Assembler::b(Label target) { emit_branch(0x14000000, target); }

void Assembler::bl_addr(std::uint64_t target) {
  const std::int64_t rel = (static_cast<std::int64_t>(target) -
                            static_cast<std::int64_t>(here())) / 4;
  word(0x94000000 | (static_cast<std::uint32_t>(rel) & 0x03ffffff));
}

void Assembler::b_addr(std::uint64_t target) {
  const std::int64_t rel = (static_cast<std::int64_t>(target) -
                            static_cast<std::int64_t>(here())) / 4;
  word(0x14000000 | (static_cast<std::uint32_t>(rel) & 0x03ffffff));
}

void Assembler::b_cond(Cond cc, Label target) {
  fixups_.push_back({Fixup::Kind::kImm19, words_.size(), target.id_});
  word(0x54000000 | static_cast<std::uint32_t>(cc));
}

void Assembler::cbz(Reg rt, Label target) {
  fixups_.push_back({Fixup::Kind::kImm19, words_.size(), target.id_});
  word(0xb4000000 | (rt & 31));
}

void Assembler::cbnz(Reg rt, Label target) {
  fixups_.push_back({Fixup::Kind::kImm19, words_.size(), target.id_});
  word(0xb5000000 | (rt & 31));
}

void Assembler::ret() { word(0xd65f03c0); }
void Assembler::br(Reg rn) { word(0xd61f0000 | (static_cast<std::uint32_t>(rn & 31) << 5)); }
void Assembler::blr(Reg rn) { word(0xd63f0000 | (static_cast<std::uint32_t>(rn & 31) << 5)); }
void Assembler::udf() { word(0); }

std::vector<std::uint8_t> Assembler::finish() {
  for (const auto& f : fixups_) {
    if (f.label == 0 || f.label > label_addrs_.size())
      throw EncodeError("fixup references invalid label");
    const std::uint64_t target = label_addrs_[f.label - 1];
    if (target == UINT64_MAX) throw EncodeError("fixup references unbound label");
    const std::uint64_t at = base_ + f.index * 4;
    std::uint32_t& w = words_[f.index];
    switch (f.kind) {
      case Fixup::Kind::kImm26: {
        if ((target - at) % 4 != 0) throw EncodeError("branch target misaligned");
        const std::int64_t rel = (static_cast<std::int64_t>(target) -
                                  static_cast<std::int64_t>(at)) / 4;
        if (rel > 0x1ffffff || rel < -0x2000000) throw EncodeError("imm26 out of range");
        w |= static_cast<std::uint32_t>(rel) & 0x03ffffff;
        break;
      }
      case Fixup::Kind::kImm19: {
        if ((target - at) % 4 != 0) throw EncodeError("branch target misaligned");
        const std::int64_t rel = (static_cast<std::int64_t>(target) -
                                  static_cast<std::int64_t>(at)) / 4;
        if (rel > 0x3ffff || rel < -0x40000) throw EncodeError("imm19 out of range");
        w |= (static_cast<std::uint32_t>(rel) & 0x7ffff) << 5;
        break;
      }
      case Fixup::Kind::kAdrp: {
        const std::int64_t pages = (static_cast<std::int64_t>(target >> 12) -
                                    static_cast<std::int64_t>(at >> 12));
        if (pages > 0xfffff || pages < -0x100000) throw EncodeError("adrp out of range");
        const auto imm = static_cast<std::uint32_t>(pages);
        w |= ((imm & 3) << 29) | (((imm >> 2) & 0x7ffff) << 5);
        break;
      }
      case Fixup::Kind::kAddLo12: {
        w |= (static_cast<std::uint32_t>(target & 0xfff)) << 10;
        break;
      }
    }
  }
  fixups_.clear();

  std::vector<std::uint8_t> out;
  out.reserve(words_.size() * 4);
  for (std::uint32_t w : words_) {
    out.push_back(static_cast<std::uint8_t>(w));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
    out.push_back(static_cast<std::uint8_t>(w >> 16));
    out.push_back(static_cast<std::uint8_t>(w >> 24));
  }
  return out;
}

}  // namespace fsr::arm64
