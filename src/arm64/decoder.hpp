// AArch64 decoder for the BTI study: classifies the instructions that
// matter to function identification (BTI/PACIASP markers, direct and
// indirect branches) and treats everything else as kOther. Fixed
// 4-byte width means a sweep can never desynchronize.
#pragma once

#include <cstdint>

#include "arm64/insn.hpp"

namespace fsr::arm64 {

/// Decode the 32-bit instruction word at `addr`.
Insn decode(std::uint32_t word, std::uint64_t addr);

}  // namespace fsr::arm64
