// AArch64 instruction model (paper §VI extension).
//
// ARMv8.5 BTI (Branch Target Identification) plays the role Intel's
// end-branch plays on x86: indirect branches (BR/BLR) may only land on
// a BTI whose target filter matches — `bti c` accepts calls, `bti j`
// accepts jumps, `bti jc` both. PACIASP is an implicit `bti c` under
// -mbranch-protection=standard. Unlike x86, the marker therefore tells
// the analyzer *which kind* of indirect transfer can land there, which
// BtiSeeker exploits (bti c / paciasp → function entry candidate;
// bti j → jump target such as a switch case or landing pad).
#pragma once

#include <cstdint>
#include <string>

namespace fsr::arm64 {

enum class Kind : std::uint8_t {
  kOther,     // decoded, not relevant
  kNop,
  kBtiPlain,  // bti   (no landing permitted via BR/BLR with BTI enforced)
  kBtiC,      // bti c (call landing pad: function entry)
  kBtiJ,      // bti j (jump landing pad: switch case / EH pad)
  kBtiJc,     // bti jc
  kPaciasp,   // implicit bti c
  kBl,        // direct call, imm26
  kB,         // direct jump, imm26
  kBCond,     // conditional branch, imm19
  kCbz,       // compare-and-branch (cbz/cbnz), imm19
  kTbz,       // test-and-branch (tbz/tbnz), imm14
  kRet,
  kBr,        // indirect jump
  kBlr,       // indirect call
  kUdf,       // permanently undefined (zero word)
};

/// One decoded instruction. AArch64 instructions are uniformly 4 bytes,
/// so no length field is needed.
struct Insn {
  std::uint64_t addr = 0;
  std::uint32_t word = 0;
  Kind kind = Kind::kOther;
  /// Absolute target for kBl/kB/kBCond/kCbz/kTbz; 0 otherwise.
  std::uint64_t target = 0;

  /// Valid landing pad for an indirect call (function entry evidence).
  [[nodiscard]] bool is_call_pad() const {
    return kind == Kind::kBtiC || kind == Kind::kBtiJc || kind == Kind::kPaciasp;
  }
  /// Valid landing pad for an indirect jump only.
  [[nodiscard]] bool is_jump_pad() const { return kind == Kind::kBtiJ; }
  [[nodiscard]] bool is_terminator() const {
    return kind == Kind::kRet || kind == Kind::kB || kind == Kind::kBr ||
           kind == Kind::kUdf;
  }
  [[nodiscard]] std::uint64_t end() const { return addr + 4; }
};

std::string kind_name(Kind k);

}  // namespace fsr::arm64
