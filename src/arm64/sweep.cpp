#include "arm64/sweep.hpp"

#include "arm64/decoder.hpp"
#include "util/deadline.hpp"

namespace fsr::arm64 {

std::vector<Insn> linear_sweep(std::span<const std::uint8_t> code, std::uint64_t base) {
  std::vector<Insn> out;
  out.reserve(code.size() / 4);
  for (std::size_t off = 0; off + 4 <= code.size(); off += 4) {
    if (util::deadline_expired()) break;  // partial sweep; expiry is latched
    const std::uint32_t w = static_cast<std::uint32_t>(code[off]) |
                            static_cast<std::uint32_t>(code[off + 1]) << 8 |
                            static_cast<std::uint32_t>(code[off + 2]) << 16 |
                            static_cast<std::uint32_t>(code[off + 3]) << 24;
    out.push_back(decode(w, base + off));
  }
  return out;
}

}  // namespace fsr::arm64
