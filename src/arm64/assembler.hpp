// Minimal AArch64 assembler for the BTI corpus generator.
//
// Emits the instruction repertoire a compiler produces under
// -mbranch-protection=bti/standard: BTI/PACIASP markers, frame
// save/restore pairs, ALU filler, direct and indirect branches, and
// ADRP+ADD address materialization. Label fixups mirror the x86
// assembler's design.
#pragma once

#include <cstdint>
#include <vector>

#include "arm64/insn.hpp"
#include "util/error.hpp"

namespace fsr::arm64 {

/// General-purpose register number (x0..x28 usable as scratch here).
using Reg = std::uint8_t;
inline constexpr Reg kFp = 29;  // x29
inline constexpr Reg kLr = 30;  // x30

/// Condition codes for b.cond.
enum class Cond : std::uint8_t {
  kEq = 0x0, kNe = 0x1, kHs = 0x2, kLo = 0x3,
  kMi = 0x4, kPl = 0x5, kVs = 0x6, kVc = 0x7,
  kHi = 0x8, kLs = 0x9, kGe = 0xa, kLt = 0xb,
  kGt = 0xc, kLe = 0xd,
};

class Label {
public:
  Label() = default;

private:
  friend class Assembler;
  explicit Label(std::uint32_t id) : id_(id + 1) {}
  std::uint32_t id_ = 0;
};

class Assembler {
public:
  Assembler(std::uint64_t base) : base_(base) {}

  [[nodiscard]] std::uint64_t base() const { return base_; }
  [[nodiscard]] std::uint64_t here() const { return base_ + words_.size() * 4; }
  [[nodiscard]] std::size_t size_bytes() const { return words_.size() * 4; }

  Label make_label();
  void bind(Label l);
  void bind_to(Label l, std::uint64_t addr);
  [[nodiscard]] std::uint64_t address_of(Label l) const;

  // --- markers -----------------------------------------------------------
  void bti(Kind which);  // kBtiPlain / kBtiC / kBtiJ / kBtiJc
  void paciasp();
  void autiasp();
  void nop();

  // --- prologue / epilogue --------------------------------------------------
  /// stp x29, x30, [sp, #-16]!
  void stp_fp_lr_pre();
  /// ldp x29, x30, [sp], #16
  void ldp_fp_lr_post();
  /// mov x29, sp
  void mov_fp_sp();
  void sub_sp(std::uint16_t imm12);
  void add_sp(std::uint16_t imm12);

  // --- ALU filler -------------------------------------------------------------
  void movz(Reg rd, std::uint16_t imm16);
  void mov_rr(Reg rd, Reg rm);           // orr rd, xzr, rm
  void add_rr(Reg rd, Reg rn, Reg rm);
  void sub_rr(Reg rd, Reg rn, Reg rm);
  void eor_rr(Reg rd, Reg rn, Reg rm);
  void mul_rr(Reg rd, Reg rn, Reg rm);
  void add_ri(Reg rd, Reg rn, std::uint16_t imm12);
  void cmp_ri(Reg rn, std::uint16_t imm12);  // subs xzr, rn, #imm

  // --- addresses ----------------------------------------------------------------
  /// adrp rd, target_page ; add rd, rd, #lo12 — materialize an address.
  void load_addr(Reg rd, Label target);

  // --- control flow -----------------------------------------------------------
  void bl(Label target);
  void bl_addr(std::uint64_t target);
  void b(Label target);
  void b_addr(std::uint64_t target);
  void b_cond(Cond cc, Label target);
  void cbz(Reg rt, Label target);
  void cbnz(Reg rt, Label target);
  void ret();
  void br(Reg rn);
  void blr(Reg rn);
  void udf();

  /// Resolve fixups and return little-endian bytes.
  std::vector<std::uint8_t> finish();

private:
  struct Fixup {
    enum class Kind { kImm26, kImm19, kAdrp, kAddLo12 } kind;
    std::size_t index;   // word index
    std::uint32_t label;
  };

  void word(std::uint32_t w) { words_.push_back(w); }
  void emit_branch(std::uint32_t opcode, Label target);

  std::uint64_t base_;
  std::vector<std::uint32_t> words_;
  std::vector<std::uint64_t> label_addrs_;
  std::vector<Fixup> fixups_;
};

}  // namespace fsr::arm64
