// Structure-aware ELF fault injection.
//
// Robustness claims need adversarial inputs, and random bit flips alone
// rarely reach the deep parsing paths (a flipped bit in .text changes
// one instruction; a flipped bit in a section header can redirect the
// whole parse). This engine mutates binaries *structurally*: it peeks
// at the ELF layout to aim corruption at the exact metadata the
// analyzers trust — section headers, .eh_frame CIE/FDE chains, LSDA
// call-site tables, the PLT, .note.gnu.property — plus blunt-force
// truncation and bit/byte noise.
//
// Every mutant is a pure function of its FaultPlan (seed, kind, id):
// the same plan over the same input bytes yields the same mutant on any
// machine, so a crash found in a 2,000-mutant sweep is reproducible
// from three integers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fsr::inject {

/// The mutation families. Structure-aware kinds fall back to kBitFlip
/// when the input has no recognizable layout or lacks the target
/// section — a mutant is always produced.
enum class Mutation : std::uint8_t {
  kTruncate,         // cut the file short at a seeded point
  kBitFlip,          // flip 1-8 random bits anywhere
  kByteStomp,        // overwrite a random run with random bytes
  kShdrCorrupt,      // randomize fields of one section header
  kShdrOverlap,      // alias one section's file range onto another's
  kShdrOob,          // point a section past EOF / wrap offset+size
  kShnumOversize,    // e_shnum claims headers that do not exist
  kShstrndxCorrupt,  // e_shstrndx out of range
  kEhFrameLength,    // extreme .eh_frame record length fields
  kCieCorrupt,       // stomp CIE version / augmentation string
  kFdeCorrupt,       // retarget an FDE's CIE back-pointer
  kLsdaHostile,      // endless-ULEB128 runs in .gcc_except_table
  kPltDegenerate,    // garbage PLT stubs / non-stub-multiple size
  kNoteCorrupt,      // lying namesz/descsz/pr_datasz in the note
};

inline constexpr std::size_t kMutationCount = 14;

[[nodiscard]] const char* to_string(Mutation m);

/// One reproducible mutation: (seed, kind, id) fully determines the
/// mutant bytes for a given input.
struct FaultPlan {
  std::uint64_t seed = 0;
  Mutation kind = Mutation::kBitFlip;
  std::uint32_t id = 0;

  /// Stable label for reports: "fde-corrupt/42@seed".
  [[nodiscard]] std::string label() const;
};

/// Apply `plan` to `elf_bytes`, returning the mutant. Never throws on
/// well-formed or malformed input; never returns the input unchanged
/// (at minimum one bit differs), except for empty input which is
/// returned empty.
[[nodiscard]] std::vector<std::uint8_t> mutate(std::span<const std::uint8_t> elf_bytes,
                                               const FaultPlan& plan);

/// `count` plans cycling round-robin through all mutation kinds with
/// distinct ids, so a sweep exercises every family evenly.
[[nodiscard]] std::vector<FaultPlan> make_plans(std::uint64_t seed, std::size_t count);

}  // namespace fsr::inject
