#include "inject/fault.hpp"

#include <algorithm>
#include <optional>
#include <string_view>

#include "util/rng.hpp"

namespace fsr::inject {

namespace {

using util::Rng;

// ---------------------------------------------------------------------------
// Bounds-checked little-endian accessors. The peek runs on arbitrary
// bytes (mutants can be re-mutated), so every read is guarded and every
// write silently no-ops when the target lies outside the buffer.

std::uint16_t rd16(std::span<const std::uint8_t> b, std::size_t off) {
  if (off + 2 > b.size()) return 0;
  return static_cast<std::uint16_t>(b[off] | b[off + 1] << 8);
}

std::uint32_t rd32(std::span<const std::uint8_t> b, std::size_t off) {
  if (off + 4 > b.size()) return 0;
  return static_cast<std::uint32_t>(b[off]) | static_cast<std::uint32_t>(b[off + 1]) << 8 |
         static_cast<std::uint32_t>(b[off + 2]) << 16 |
         static_cast<std::uint32_t>(b[off + 3]) << 24;
}

std::uint64_t rd64(std::span<const std::uint8_t> b, std::size_t off) {
  if (off + 8 > b.size()) return 0;
  return static_cast<std::uint64_t>(rd32(b, off)) |
         static_cast<std::uint64_t>(rd32(b, off + 4)) << 32;
}

void wr16(std::vector<std::uint8_t>& b, std::size_t off, std::uint16_t v) {
  if (off + 2 > b.size()) return;
  b[off] = static_cast<std::uint8_t>(v);
  b[off + 1] = static_cast<std::uint8_t>(v >> 8);
}

void wr32(std::vector<std::uint8_t>& b, std::size_t off, std::uint32_t v) {
  if (off + 4 > b.size()) return;
  for (int i = 0; i < 4; ++i) b[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void wr64(std::vector<std::uint8_t>& b, std::size_t off, std::uint64_t v) {
  if (off + 8 > b.size()) return;
  for (int i = 0; i < 8; ++i) b[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

// ---------------------------------------------------------------------------
// Layout peek: just enough section-table understanding to aim, shared
// by every structure-aware mutation. Returns nullopt on anything that
// does not look like a little-endian ELF with an intact section table;
// callers then fall back to blind bit flips.

struct SecRef {
  std::string name;
  std::uint32_t type = 0;
  std::uint64_t offset = 0;  // file offset of the section bytes
  std::uint64_t size = 0;
  std::size_t shdr_off = 0;  // file offset of this section's header
};

struct Layout {
  bool is64 = true;
  std::uint64_t shoff = 0;
  std::uint16_t shentsize = 0;
  std::uint16_t shnum = 0;
  std::vector<SecRef> sections;

  [[nodiscard]] const SecRef* find(std::string_view name) const {
    for (const SecRef& s : sections)
      if (s.name == name) return &s;
    return nullptr;
  }
};

// ELF header field offsets (little-endian only; the corpus is LE).
constexpr std::size_t kOffShoff64 = 0x28, kOffShoff32 = 0x20;
constexpr std::size_t kOffShentsize64 = 0x3a, kOffShentsize32 = 0x2e;
constexpr std::size_t kOffShnum64 = 0x3c, kOffShnum32 = 0x30;
constexpr std::size_t kOffShstrndx64 = 0x3e, kOffShstrndx32 = 0x32;
// Section header field offsets.
constexpr std::size_t kShName = 0x00, kShType = 0x04;
constexpr std::size_t kShOffset64 = 0x18, kShOffset32 = 0x10;
constexpr std::size_t kShSize64 = 0x20, kShSize32 = 0x14;
constexpr std::size_t kShEntsize64 = 0x38, kShEntsize32 = 0x24;

std::optional<Layout> peek_layout(std::span<const std::uint8_t> b) {
  if (b.size() < 0x34) return std::nullopt;
  if (!(b[0] == 0x7f && b[1] == 'E' && b[2] == 'L' && b[3] == 'F')) return std::nullopt;
  if (b[5] != 1) return std::nullopt;  // little-endian only
  Layout lay;
  if (b[4] == 2)
    lay.is64 = true;
  else if (b[4] == 1)
    lay.is64 = false;
  else
    return std::nullopt;
  if (lay.is64 && b.size() < 0x40) return std::nullopt;

  lay.shoff = lay.is64 ? rd64(b, kOffShoff64) : rd32(b, kOffShoff32);
  lay.shentsize = rd16(b, lay.is64 ? kOffShentsize64 : kOffShentsize32);
  lay.shnum = rd16(b, lay.is64 ? kOffShnum64 : kOffShnum32);
  const std::uint16_t shstrndx = rd16(b, lay.is64 ? kOffShstrndx64 : kOffShstrndx32);
  if (lay.shnum == 0 || lay.shentsize < (lay.is64 ? 0x40u : 0x28u)) return std::nullopt;
  if (lay.shoff > b.size() ||
      static_cast<std::uint64_t>(lay.shnum) * lay.shentsize > b.size() - lay.shoff)
    return std::nullopt;

  lay.sections.reserve(lay.shnum);
  for (std::uint16_t i = 0; i < lay.shnum; ++i) {
    const std::size_t at = static_cast<std::size_t>(lay.shoff) + i * lay.shentsize;
    SecRef s;
    s.shdr_off = at;
    s.type = rd32(b, at + kShType);
    s.offset = lay.is64 ? rd64(b, at + kShOffset64) : rd32(b, at + kShOffset32);
    s.size = lay.is64 ? rd64(b, at + kShSize64) : rd32(b, at + kShSize32);
    lay.sections.push_back(s);
  }

  // Resolve names through the string table, defensively.
  if (shstrndx < lay.shnum) {
    const SecRef& strtab = lay.sections[shstrndx];
    if (strtab.offset <= b.size() && strtab.size <= b.size() - strtab.offset) {
      for (std::uint16_t i = 0; i < lay.shnum; ++i) {
        const std::uint32_t noff =
            rd32(b, static_cast<std::size_t>(lay.shoff) + i * lay.shentsize + kShName);
        if (noff >= strtab.size) continue;
        const std::uint8_t* base = b.data() + strtab.offset + noff;
        const std::size_t cap = static_cast<std::size_t>(strtab.size - noff);
        std::size_t len = 0;
        while (len < cap && base[len] != 0) ++len;
        lay.sections[i].name.assign(reinterpret_cast<const char*>(base), len);
      }
    }
  }
  return lay;
}

/// The section's byte range clipped to the file (mutants may claim more
/// bytes than exist). Empty when nothing of it is in the file.
std::pair<std::size_t, std::size_t> clipped(const SecRef& s, std::size_t file_size) {
  if (s.offset >= file_size) return {0, 0};
  const std::size_t begin = static_cast<std::size_t>(s.offset);
  const std::size_t len = static_cast<std::size_t>(
      std::min<std::uint64_t>(s.size, file_size - s.offset));
  return {begin, len};
}

// ---------------------------------------------------------------------------
// Mutation families.

void bit_flip(std::vector<std::uint8_t>& b, Rng& rng) {
  if (b.empty()) return;
  const std::uint64_t flips = rng.range(1, 8);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::size_t off = static_cast<std::size_t>(rng.range(0, b.size() - 1));
    b[off] ^= static_cast<std::uint8_t>(1u << rng.range(0, 7));
  }
}

void byte_stomp(std::vector<std::uint8_t>& b, Rng& rng) {
  if (b.empty()) return;
  const std::size_t off = static_cast<std::size_t>(rng.range(0, b.size() - 1));
  const std::size_t len =
      std::min<std::size_t>(static_cast<std::size_t>(rng.range(1, 64)), b.size() - off);
  for (std::size_t i = 0; i < len; ++i)
    b[off + i] = static_cast<std::uint8_t>(rng.range(0, 255));
}

/// An extreme or random integer — the values bounds checks get wrong.
std::uint64_t hostile_u64(Rng& rng) {
  switch (rng.range(0, 4)) {
    case 0: return 0;
    case 1: return 0xffffffffffffffffULL;
    case 2: return 0x8000000000000000ULL;
    case 3: return 0xffffffffULL;
    default: return rng.next();
  }
}

void shdr_corrupt(std::vector<std::uint8_t>& b, const Layout& lay, Rng& rng) {
  const SecRef& s = lay.sections[rng.range(0, lay.sections.size() - 1)];
  const std::size_t fields = static_cast<std::size_t>(rng.range(1, 3));
  for (std::size_t i = 0; i < fields; ++i) {
    switch (rng.range(0, 3)) {
      case 0:  // sh_offset
        if (lay.is64)
          wr64(b, s.shdr_off + kShOffset64, hostile_u64(rng));
        else
          wr32(b, s.shdr_off + kShOffset32, static_cast<std::uint32_t>(hostile_u64(rng)));
        break;
      case 1:  // sh_size
        if (lay.is64)
          wr64(b, s.shdr_off + kShSize64, hostile_u64(rng));
        else
          wr32(b, s.shdr_off + kShSize32, static_cast<std::uint32_t>(hostile_u64(rng)));
        break;
      case 2:  // sh_type
        wr32(b, s.shdr_off + kShType, static_cast<std::uint32_t>(rng.next()));
        break;
      default:  // sh_entsize
        if (lay.is64)
          wr64(b, s.shdr_off + kShEntsize64, rng.range(0, 7));
        else
          wr32(b, s.shdr_off + kShEntsize32, static_cast<std::uint32_t>(rng.range(0, 7)));
        break;
    }
  }
}

void shdr_overlap(std::vector<std::uint8_t>& b, const Layout& lay, Rng& rng) {
  const std::size_t a = static_cast<std::size_t>(rng.range(0, lay.sections.size() - 1));
  std::size_t c = static_cast<std::size_t>(rng.range(0, lay.sections.size() - 1));
  if (a == c) c = (c + 1) % lay.sections.size();
  const SecRef& victim = lay.sections[a];
  const SecRef& donor = lay.sections[c];
  if (lay.is64) {
    wr64(b, victim.shdr_off + kShOffset64, donor.offset + rng.range(0, 16));
    wr64(b, victim.shdr_off + kShSize64, donor.size + rng.range(0, 16));
  } else {
    wr32(b, victim.shdr_off + kShOffset32,
         static_cast<std::uint32_t>(donor.offset + rng.range(0, 16)));
    wr32(b, victim.shdr_off + kShSize32,
         static_cast<std::uint32_t>(donor.size + rng.range(0, 16)));
  }
}

void shdr_oob(std::vector<std::uint8_t>& b, const Layout& lay, Rng& rng) {
  const SecRef& s = lay.sections[rng.range(0, lay.sections.size() - 1)];
  std::uint64_t offset;
  std::uint64_t size;
  if (rng.chance(0.5)) {
    // Plainly past EOF.
    offset = b.size() + rng.range(1, 0x1000);
    size = rng.range(1, 0x10000);
  } else {
    // offset + size wraps to a small number — the classic bypass of
    // `offset + size > file_size`.
    size = rng.range(0x10, 0x10000);
    offset = ~static_cast<std::uint64_t>(0) - rng.range(0, size - 1);
  }
  if (lay.is64) {
    wr64(b, s.shdr_off + kShOffset64, offset);
    wr64(b, s.shdr_off + kShSize64, size);
  } else {
    wr32(b, s.shdr_off + kShOffset32, static_cast<std::uint32_t>(offset));
    wr32(b, s.shdr_off + kShSize32, static_cast<std::uint32_t>(size));
  }
}

void shnum_oversize(std::vector<std::uint8_t>& b, const Layout& lay, Rng& rng) {
  const std::uint16_t claim = static_cast<std::uint16_t>(
      rng.chance(0.5) ? 0xffff : lay.shnum + rng.range(1, 1024));
  wr16(b, lay.is64 ? kOffShnum64 : kOffShnum32, claim);
}

void shstrndx_corrupt(std::vector<std::uint8_t>& b, const Layout& lay, Rng& rng) {
  const std::uint16_t claim = static_cast<std::uint16_t>(
      rng.chance(0.5) ? 0xffff : lay.shnum + rng.range(0, 64));
  wr16(b, lay.is64 ? kOffShstrndx64 : kOffShstrndx32, claim);
}

/// Walk .eh_frame record length fields (defensively, bounded) and
/// return the file offsets of up to 64 length fields.
std::vector<std::size_t> eh_record_offsets(std::span<const std::uint8_t> b,
                                           const SecRef& eh) {
  std::vector<std::size_t> out;
  auto [begin, len] = clipped(eh, b.size());
  std::size_t pos = 0;
  while (pos + 4 <= len && out.size() < 64) {
    out.push_back(begin + pos);
    const std::uint32_t length = rd32(b, begin + pos);
    if (length == 0 || length == 0xffffffffu) break;  // terminator / ext form
    if (length > len - pos - 4) break;
    pos += 4 + length;
  }
  return out;
}

void eh_frame_length(std::vector<std::uint8_t>& b, const SecRef& eh, Rng& rng) {
  const auto records = eh_record_offsets(b, eh);
  if (records.empty()) return;
  const std::size_t at = records[rng.range(0, records.size() - 1)];
  switch (rng.range(0, 3)) {
    case 0: wr32(b, at, 0xfffffffeu); break;           // overruns the section
    case 1: wr32(b, at, 0xffffffffu); break;           // demands a u64 length
    case 2: wr32(b, at, static_cast<std::uint32_t>(rng.range(1, 3))); break;  // too short
    default: wr32(b, at, static_cast<std::uint32_t>(rng.next())); break;
  }
}

void cie_corrupt(std::vector<std::uint8_t>& b, const SecRef& eh, Rng& rng) {
  auto [begin, len] = clipped(eh, b.size());
  if (len < 10) return;
  if (rng.chance(0.5)) {
    b[begin + 8] = static_cast<std::uint8_t>(rng.range(2, 255));  // CIE version
  } else {
    // Stomp the augmentation string with an unknown letter; keep it
    // NUL-terminated so the parse reaches the unsupported character.
    b[begin + 9] = static_cast<std::uint8_t>('z' + rng.range(1, 4));
  }
}

void fde_corrupt(std::vector<std::uint8_t>& b, const SecRef& eh, Rng& rng) {
  const auto records = eh_record_offsets(b, eh);
  // Find FDEs: records whose id field (4 bytes past the length) is
  // nonzero. Retarget the CIE back-pointer.
  std::vector<std::size_t> fdes;
  for (std::size_t at : records)
    if (rd32(b, at + 4) != 0) fdes.push_back(at);
  if (fdes.empty()) {
    eh_frame_length(b, eh, rng);  // no FDE to aim at: corrupt lengths instead
    return;
  }
  const std::size_t at = fdes[rng.range(0, fdes.size() - 1)];
  std::uint32_t v = static_cast<std::uint32_t>(rng.next());
  if (v == 0) v = 1;  // keep it an FDE, just dangling
  wr32(b, at + 4, v);
}

void lsda_hostile(std::vector<std::uint8_t>& b, const SecRef& gct, Rng& rng) {
  auto [begin, len] = clipped(gct, b.size());
  if (len == 0) return;
  switch (rng.range(0, 2)) {
    case 0: {
      // Endless ULEB128: a run of continuation bytes. A decoder without
      // a width cap spins past 64 bits.
      const std::size_t off = static_cast<std::size_t>(rng.range(0, len - 1));
      const std::size_t n = std::min<std::size_t>(
          static_cast<std::size_t>(rng.range(12, 64)), len - off);
      std::fill_n(b.begin() + static_cast<std::ptrdiff_t>(begin + off), n,
                  static_cast<std::uint8_t>(0xff));
      break;
    }
    case 1:
      // Unknown call-site encoding in the LSDA header.
      b[begin + std::min<std::size_t>(2, len - 1)] =
          static_cast<std::uint8_t>(rng.range(2, 0x0e));
      break;
    default: {
      // Huge call-site table length (9-byte ULEB, tops out past 2^62).
      const std::size_t off = static_cast<std::size_t>(rng.range(0, len - 1));
      const std::size_t n = std::min<std::size_t>(10, len - off);
      for (std::size_t i = 0; i + 1 < n; ++i) b[begin + off + i] = 0xff;
      if (n > 0) b[begin + off + n - 1] = 0x7f;
      break;
    }
  }
}

void plt_degenerate(std::vector<std::uint8_t>& b, const Layout& lay, const SecRef& plt,
                    Rng& rng) {
  auto [begin, len] = clipped(plt, b.size());
  if (rng.chance(0.5) || len == 0) {
    // Size not a multiple of the stub size (or entsize zeroed): the
    // stub walk must not read past the bytes that exist.
    if (lay.is64) {
      wr64(b, plt.shdr_off + kShSize64, plt.size > 0 ? plt.size - rng.range(1, 15) : 7);
      wr64(b, plt.shdr_off + kShEntsize64, rng.range(0, 3));
    } else {
      wr32(b, plt.shdr_off + kShSize32,
           static_cast<std::uint32_t>(plt.size > 0 ? plt.size - rng.range(1, 15) : 7));
      wr32(b, plt.shdr_off + kShEntsize32, static_cast<std::uint32_t>(rng.range(0, 3)));
    }
  } else {
    // Garbage stubs: the jump-slot decoder meets noise, not stubs.
    for (std::size_t i = 0; i < len; ++i)
      b[begin + i] = static_cast<std::uint8_t>(rng.range(0, 255));
  }
}

void note_corrupt(std::vector<std::uint8_t>& b, const SecRef& note, Rng& rng) {
  auto [begin, len] = clipped(note, b.size());
  if (len < 12) return;
  switch (rng.range(0, 2)) {
    case 0: wr32(b, begin + 0, static_cast<std::uint32_t>(hostile_u64(rng))); break;  // namesz
    case 1: wr32(b, begin + 4, static_cast<std::uint32_t>(hostile_u64(rng))); break;  // descsz
    default:
      // pr_datasz of the first property (GNU\0 name is 4 bytes, desc is
      // 8-aligned at +16 for 64-bit notes in this corpus).
      if (len >= 24) wr32(b, begin + 20, static_cast<std::uint32_t>(hostile_u64(rng)));
      else wr32(b, begin + 4, 0xffffffffu);
      break;
  }
}

}  // namespace

const char* to_string(Mutation m) {
  switch (m) {
    case Mutation::kTruncate: return "truncate";
    case Mutation::kBitFlip: return "bit-flip";
    case Mutation::kByteStomp: return "byte-stomp";
    case Mutation::kShdrCorrupt: return "shdr-corrupt";
    case Mutation::kShdrOverlap: return "shdr-overlap";
    case Mutation::kShdrOob: return "shdr-oob";
    case Mutation::kShnumOversize: return "shnum-oversize";
    case Mutation::kShstrndxCorrupt: return "shstrndx-corrupt";
    case Mutation::kEhFrameLength: return "eh-frame-length";
    case Mutation::kCieCorrupt: return "cie-corrupt";
    case Mutation::kFdeCorrupt: return "fde-corrupt";
    case Mutation::kLsdaHostile: return "lsda-hostile";
    case Mutation::kPltDegenerate: return "plt-degenerate";
    case Mutation::kNoteCorrupt: return "note-corrupt";
  }
  return "unknown";
}

std::string FaultPlan::label() const {
  return std::string(to_string(kind)) + "/" + std::to_string(id) + "@" +
         std::to_string(seed);
}

std::vector<std::uint8_t> mutate(std::span<const std::uint8_t> elf_bytes,
                                 const FaultPlan& plan) {
  std::vector<std::uint8_t> out(elf_bytes.begin(), elf_bytes.end());
  if (out.empty()) return out;

  // Derive an independent stream per (seed, kind, id); the constants
  // are odd so distinct plans never alias.
  Rng rng(plan.seed * 0x9e3779b97f4a7c15ULL ^
          (static_cast<std::uint64_t>(plan.kind) + 1) * 0xbf58476d1ce4e5b9ULL ^
          (static_cast<std::uint64_t>(plan.id) + 1) * 0x94d049bb133111ebULL);

  const std::optional<Layout> lay = peek_layout(elf_bytes);
  const SecRef* eh = lay ? lay->find(".eh_frame") : nullptr;
  const SecRef* gct = lay ? lay->find(".gcc_except_table") : nullptr;
  const SecRef* plt = lay ? lay->find(".plt") : nullptr;
  const SecRef* note = lay ? lay->find(".note.gnu.property") : nullptr;

  switch (plan.kind) {
    case Mutation::kTruncate:
      out.resize(static_cast<std::size_t>(rng.range(0, out.size() - 1)));
      return out;  // shorter by construction; the equality net below can't help
    case Mutation::kBitFlip:
      bit_flip(out, rng);
      break;
    case Mutation::kByteStomp:
      byte_stomp(out, rng);
      break;
    case Mutation::kShdrCorrupt:
      if (lay) shdr_corrupt(out, *lay, rng);
      break;
    case Mutation::kShdrOverlap:
      if (lay && lay->sections.size() >= 2) shdr_overlap(out, *lay, rng);
      break;
    case Mutation::kShdrOob:
      if (lay) shdr_oob(out, *lay, rng);
      break;
    case Mutation::kShnumOversize:
      if (lay) shnum_oversize(out, *lay, rng);
      break;
    case Mutation::kShstrndxCorrupt:
      if (lay) shstrndx_corrupt(out, *lay, rng);
      break;
    case Mutation::kEhFrameLength:
      if (eh != nullptr) eh_frame_length(out, *eh, rng);
      break;
    case Mutation::kCieCorrupt:
      if (eh != nullptr) cie_corrupt(out, *eh, rng);
      break;
    case Mutation::kFdeCorrupt:
      if (eh != nullptr) fde_corrupt(out, *eh, rng);
      break;
    case Mutation::kLsdaHostile:
      if (gct != nullptr) lsda_hostile(out, *gct, rng);
      break;
    case Mutation::kPltDegenerate:
      if (lay && plt != nullptr) plt_degenerate(out, *lay, *plt, rng);
      break;
    case Mutation::kNoteCorrupt:
      if (note != nullptr) note_corrupt(out, *note, rng);
      break;
  }

  // A structure-aware kind may have had no target (section absent,
  // header unreadable) or written a value equal to the original. The
  // engine promises a real mutant, so fall back to bit flips.
  if (std::equal(out.begin(), out.end(), elf_bytes.begin(), elf_bytes.end()))
    bit_flip(out, rng);
  return out;
}

std::vector<FaultPlan> make_plans(std::uint64_t seed, std::size_t count) {
  std::vector<FaultPlan> plans;
  plans.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FaultPlan p;
    p.seed = seed;
    p.kind = static_cast<Mutation>(i % kMutationCount);
    p.id = static_cast<std::uint32_t>(i);
    plans.push_back(p);
  }
  return plans;
}

}  // namespace fsr::inject
