// Structured event log: what is the process *doing*, as data.
//
// The trace/metrics/report trio from PR 3 is batch-shaped — buffered in
// memory, flushed at exit. A long-lived daemon needs a live log:
// events appear on disk while the process runs, a `tail` query can
// return the newest entries over the wire, and a repeated event cannot
// flood either.
//
// Write path: one event is one slot in a lock-free per-thread ring.
// Slots are seqlocked arrays of atomics (version counter around relaxed
// word stores), so a concurrent export — the daemon's `tail` op racing
// live request threads — copies a consistent snapshot or skips the slot
// entirely; there is no mutex anywhere on the record path and no data
// race anywhere at all (TSan-clean by construction). Each event carries
// a global sequence number, a steady-clock timestamp, a severity, the
// ambient request/item id (obs::ScopedItemId — the same mechanism spans
// use), an event name, and a pre-rendered JSON field body.
//
// Rate limiting: at most `rate limit` events per (thread, name) per
// second are admitted; the rest are counted, and the next admitted
// event of that name carries a "suppressed" tally so nothing vanishes
// silently.
//
// Export: JSONL, one self-describing object per line, merged across
// thread rings in sequence order. Two modes:
//  - snapshot (log_jsonl / write_log): everything currently retained;
//  - streaming (set_log_stream_path): a background flusher appends new
//    events to the file every ~200 ms, so a SIGKILLed daemon still
//    leaves its log behind — no atexit required.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fsr::obs {

enum class Severity : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };
const char* to_string(Severity s);

namespace detail {
extern std::atomic<bool> g_log_enabled;
}  // namespace detail

/// Record-path gate: one relaxed load. Call sites that build LogFields
/// should check this first so a disabled log costs nothing.
inline bool log_enabled() {
  return detail::g_log_enabled.load(std::memory_order_relaxed);
}

void set_log_enabled(bool on);

/// Incrementally rendered JSON members for one event ("k":v,"k2":v2).
/// String values are escaped; raw() trusts the caller's JSON.
class LogFields {
 public:
  LogFields& str(std::string_view key, std::string_view value);
  LogFields& num(std::string_view key, double value);
  LogFields& integer(std::string_view key, std::uint64_t value);
  LogFields& boolean(std::string_view key, bool value);
  LogFields& raw(std::string_view key, std::string_view json);
  [[nodiscard]] const std::string& body() const { return body_; }
  [[nodiscard]] bool empty() const { return body_.empty(); }

 private:
  std::string body_;
};

/// One exported event — the copy a tail query or a test sees.
struct LogEvent {
  std::uint64_t seq = 0;
  std::uint64_t ts_ns = 0;       // obs::now_ns timebase (steady clock)
  std::uint64_t request_id = 0;  // ambient ScopedItemId at the record site
  Severity severity = Severity::kInfo;
  std::uint64_t suppressed = 0;  // rate-limited occurrences folded in
  bool truncated = false;        // fields did not fit the slot
  std::string event;             // event name
  std::string fields;            // rendered JSON members ("" when none)

  /// The event as one JSONL object.
  [[nodiscard]] std::string to_json() const;
};

/// Append one event to the calling thread's ring (no-op when the log is
/// disabled). The ambient request/item id is captured automatically.
void log_event(Severity sev, std::string_view event);
void log_event(Severity sev, std::string_view event, const LogFields& fields);

namespace detail {
/// Timestamp-injected variant so rate-limit and window tests are
/// deterministic. Production paths use log_event (ts = now_ns()).
void log_event_at(Severity sev, std::string_view event, const LogFields& fields,
                  std::uint64_t ts_ns);
}  // namespace detail

struct LogStats {
  std::size_t threads = 0;        // registered rings
  std::uint64_t recorded = 0;     // events ever admitted to a ring
  std::uint64_t dropped = 0;      // overwritten by ring wraparound
  std::uint64_t suppressed = 0;   // rejected by the rate limiter
};

LogStats log_stats();

/// Ring capacity (events per thread) for rings registered after this
/// call; existing rings keep their size. Minimum 8.
void set_log_buffer_capacity(std::size_t events);

/// Events per (thread, name) per second before suppression. Minimum 1.
void set_log_rate_limit(std::uint64_t per_second);

/// Drop every retained event (rings stay registered). Streaming cursors
/// advance past the cleared events.
void clear_log();

/// The newest `max` retained events across all rings, oldest first.
std::vector<LogEvent> log_tail(std::size_t max);

/// Every retained event as JSONL, in sequence order.
std::string log_jsonl();

/// log_jsonl() to a file (rewrite). False on I/O failure.
bool write_log(const std::string& path);

/// Streaming mode: append newly recorded events to `path` every ~200 ms
/// from a background flusher (started on demand, stopped and joined on
/// set_log_stream_path("")). Enables the log. Events are appended in
/// per-batch sequence order; a wrapped ring drops the lines it
/// overwrote (counted in LogStats::dropped).
void set_log_stream_path(const std::string& path);

/// Flush pending events to the stream now (no-op without a stream).
void drain_log_stream();

}  // namespace fsr::obs
