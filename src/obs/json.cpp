#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace fsr::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Control chars and DEL escape to \u00XX; everything else —
        // including multi-byte UTF-8 sequences — passes through as-is
        // (JSON strings are Unicode; the bytes stay valid UTF-8).
        if (static_cast<unsigned char>(c) < 0x20 ||
            static_cast<unsigned char>(c) == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Cursor over the text being validated. Each parse_* consumes exactly
/// one grammar production or returns false with the position unusable.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r'))
      ++pos;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_string() {
    if (done() || peek() != '"') return false;
    ++pos;
    while (!done()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        if (done()) return false;
        const char esc = text[pos++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i)
            if (done() || std::isxdigit(static_cast<unsigned char>(text[pos++])) == 0)
              return false;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool parse_number() {
    const std::size_t start = pos;
    if (!done() && peek() == '-') ++pos;
    if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
    if (peek() == '0') {
      ++pos;
    } else {
      while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    if (!done() && peek() == '.') {
      ++pos;
      if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    return pos > start;
  }

  bool parse_value(int depth) {
    if (depth > 64) return false;
    skip_ws();
    if (done()) return false;
    switch (peek()) {
      case '{': {
        ++pos;
        skip_ws();
        if (!done() && peek() == '}') { ++pos; return true; }
        for (;;) {
          skip_ws();
          if (!parse_string()) return false;
          skip_ws();
          if (done() || text[pos++] != ':') return false;
          if (!parse_value(depth + 1)) return false;
          skip_ws();
          if (done()) return false;
          const char c = text[pos++];
          if (c == '}') return true;
          if (c != ',') return false;
        }
      }
      case '[': {
        ++pos;
        skip_ws();
        if (!done() && peek() == ']') { ++pos; return true; }
        for (;;) {
          if (!parse_value(depth + 1)) return false;
          skip_ws();
          if (done()) return false;
          const char c = text[pos++];
          if (c == ']') return true;
          if (c != ',') return false;
        }
      }
      case '"': return parse_string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return parse_number();
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.parse_value(0)) return false;
  p.skip_ws();
  return p.done();
}

const std::string& JsonValue::as_string(const std::string& fallback) const {
  return kind_ == Kind::kString ? str_ : fallback;
}

double JsonValue::as_number(double fallback) const {
  return kind_ == Kind::kNumber ? num_ : fallback;
}

bool JsonValue::as_bool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

std::string JsonValue::get_string(std::string_view key,
                                  const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_string(fallback);
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_number(fallback);
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_bool(fallback);
}

namespace detail {

/// Value-building twin of the validating Parser above; kept separate so
/// the hot validation path stays allocation-free.
struct ValueParser {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r'))
      ++pos;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    if (done() || peek() != '"') return false;
    ++pos;
    while (!done()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (done()) return false;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            if (done()) return false;
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          append_utf8(out, cp);  // BMP only; surrogate pairs unneeded here
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > 64) return false;
    skip_ws();
    if (done()) return false;
    switch (peek()) {
      case '{': {
        out.kind_ = JsonValue::Kind::kObject;
        ++pos;
        skip_ws();
        if (!done() && peek() == '}') { ++pos; return true; }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (done() || text[pos++] != ':') return false;
          JsonValue member;
          if (!parse_value(member, depth + 1)) return false;
          out.obj_.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (done()) return false;
          const char c = text[pos++];
          if (c == '}') return true;
          if (c != ',') return false;
        }
      }
      case '[': {
        out.kind_ = JsonValue::Kind::kArray;
        ++pos;
        skip_ws();
        if (!done() && peek() == ']') { ++pos; return true; }
        for (;;) {
          JsonValue item;
          if (!parse_value(item, depth + 1)) return false;
          out.arr_.push_back(std::move(item));
          skip_ws();
          if (done()) return false;
          const char c = text[pos++];
          if (c == ']') return true;
          if (c != ',') return false;
        }
      }
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.str_);
      case 't':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return literal("true");
      case 'f':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return literal("false");
      case 'n':
        out.kind_ = JsonValue::Kind::kNull;
        return literal("null");
      default: {
        // Reuse the validator's number scanner for the grammar, then
        // convert the accepted slice.
        Parser num{text, pos};
        if (!num.parse_number()) return false;
        out.kind_ = JsonValue::Kind::kNumber;
        out.num_ = std::strtod(std::string(text.substr(pos, num.pos - pos)).c_str(), nullptr);
        pos = num.pos;
        return true;
      }
    }
  }
};

}  // namespace detail

std::optional<JsonValue> json_parse(std::string_view text) {
  detail::ValueParser p{text};
  JsonValue value;
  if (!p.parse_value(value, 0)) return std::nullopt;
  p.skip_ws();
  if (!p.done()) return std::nullopt;
  return value;
}

}  // namespace fsr::obs
