#include "obs/json.hpp"

#include <cctype>
#include <cstdio>

namespace fsr::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Cursor over the text being validated. Each parse_* consumes exactly
/// one grammar production or returns false with the position unusable.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r'))
      ++pos;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_string() {
    if (done() || peek() != '"') return false;
    ++pos;
    while (!done()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        if (done()) return false;
        const char esc = text[pos++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i)
            if (done() || std::isxdigit(static_cast<unsigned char>(text[pos++])) == 0)
              return false;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool parse_number() {
    const std::size_t start = pos;
    if (!done() && peek() == '-') ++pos;
    if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
    if (peek() == '0') {
      ++pos;
    } else {
      while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    if (!done() && peek() == '.') {
      ++pos;
      if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (done() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!done() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos;
    }
    return pos > start;
  }

  bool parse_value(int depth) {
    if (depth > 64) return false;
    skip_ws();
    if (done()) return false;
    switch (peek()) {
      case '{': {
        ++pos;
        skip_ws();
        if (!done() && peek() == '}') { ++pos; return true; }
        for (;;) {
          skip_ws();
          if (!parse_string()) return false;
          skip_ws();
          if (done() || text[pos++] != ':') return false;
          if (!parse_value(depth + 1)) return false;
          skip_ws();
          if (done()) return false;
          const char c = text[pos++];
          if (c == '}') return true;
          if (c != ',') return false;
        }
      }
      case '[': {
        ++pos;
        skip_ws();
        if (!done() && peek() == ']') { ++pos; return true; }
        for (;;) {
          if (!parse_value(depth + 1)) return false;
          skip_ws();
          if (done()) return false;
          const char c = text[pos++];
          if (c == ']') return true;
          if (c != ',') return false;
        }
      }
      case '"': return parse_string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return parse_number();
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.parse_value(0)) return false;
  p.skip_ws();
  return p.done();
}

}  // namespace fsr::obs
