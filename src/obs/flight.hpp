// Per-request flight recorder: keep the span tree of ONE request in
// hand, so a slow or deadline-expired request can be dumped as a
// structured event with full stage attribution — without globally
// enabling tracing (whose rings interleave every thread and are
// exported in batch, the wrong shape for "why was request #8812 slow").
//
// A FlightScope is an RAII thread-local capture: while one is alive on
// a thread, every Span that thread completes is appended to the scope
// (bounded; overflow is counted, not grown). TRACE_SPAN sites need no
// changes — Span's constructor gate is span_capture_enabled(), which
// is true when tracing is on OR a flight scope is active. When the
// request finishes fast, the scope is destroyed and the spans are
// discarded for free; when it was slow, spans_json() renders the tree
// into the slow-request event.
//
// Scopes nest (the previous scope is restored on destruction) and are
// strictly thread-local: a request that must be recorded has to run
// its work on the thread that owns the scope — which is exactly how
// the service executes a request (one pool task).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace fsr::obs {

class FlightScope {
 public:
  explicit FlightScope(std::size_t max_spans = 256);
  ~FlightScope();
  FlightScope(const FlightScope&) = delete;
  FlightScope& operator=(const FlightScope&) = delete;

  /// Called by record_span for every completed span on this thread.
  /// `name` must outlive the scope (string literals at trace sites).
  void note_span(const char* name, std::uint64_t id, std::uint64_t begin_ns,
                 std::uint64_t end_ns);

  [[nodiscard]] std::size_t span_count() const { return spans_.size(); }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  /// The captured spans as a JSON array, timestamps re-based to
  /// microseconds after `epoch_ns` (the request's start):
  ///   [{"name":"decode","item":3,"at_us":12,"dur_us":840}, ...]
  [[nodiscard]] std::string spans_json(std::uint64_t epoch_ns) const;

 private:
  struct Rec {
    const char* name;
    std::uint64_t id;
    std::uint64_t begin_ns;
    std::uint64_t end_ns;
  };
  std::vector<Rec> spans_;
  std::size_t max_spans_;
  std::size_t dropped_ = 0;
  FlightScope* prev_;
};

}  // namespace fsr::obs
