#include "obs/eventlog.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace fsr::obs {

namespace detail {
std::atomic<bool> g_log_enabled{false};
}  // namespace detail

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "info";
}

void set_log_enabled(bool on) {
  detail::g_log_enabled.store(on, std::memory_order_relaxed);
}

// ------------------------------------------------------------ LogFields

namespace {

void append_member_key(std::string& out, std::string_view key) {
  if (!out.empty()) out += ',';
  out += '"';
  out += json_escape(key);
  out += "\":";
}

}  // namespace

LogFields& LogFields::str(std::string_view key, std::string_view value) {
  append_member_key(body_, key);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

LogFields& LogFields::num(std::string_view key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  append_member_key(body_, key);
  body_ += buf;
  return *this;
}

LogFields& LogFields::integer(std::string_view key, std::uint64_t value) {
  append_member_key(body_, key);
  body_ += std::to_string(value);
  return *this;
}

LogFields& LogFields::boolean(std::string_view key, bool value) {
  append_member_key(body_, key);
  body_ += value ? "true" : "false";
  return *this;
}

LogFields& LogFields::raw(std::string_view key, std::string_view json) {
  append_member_key(body_, key);
  body_ += json;
  return *this;
}

// ----------------------------------------------------------- ring slots

namespace {

/// Seqlocked event slot. Every member is an atomic, so a reader racing
/// the owning writer never has a data race; the version counter tells
/// it whether the snapshot it copied is consistent (even and unchanged
/// across the copy) or must be discarded.
struct Slot {
  static constexpr std::size_t kTextBytes = 1920;
  static constexpr std::size_t kTextWords = kTextBytes / 8;
  static constexpr std::uint32_t kMaxNameBytes = 128;

  std::atomic<std::uint64_t> version{0};
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> request_id{0};
  std::atomic<std::uint64_t> suppressed{0};
  std::atomic<std::uint32_t> severity{0};
  std::atomic<std::uint32_t> name_len{0};
  std::atomic<std::uint32_t> fields_len{0};
  std::atomic<std::uint32_t> truncated{0};
  std::atomic<std::uint64_t> text[kTextWords];
};

struct LogBuffer {
  std::unique_ptr<Slot[]> ring;
  std::size_t capacity = 0;
  std::atomic<std::uint64_t> recorded{0};
  /// Streaming cursor: events below this recorded-index have been
  /// appended to the stream file. Guarded by the stream mutex.
  std::uint64_t drained = 0;
};

struct LogState {
  std::mutex mutex;
  std::vector<std::shared_ptr<LogBuffer>> buffers;
  std::size_t capacity = 1024;  // events per thread (~2 MiB, lazily allocated)
};

LogState& state() {
  static LogState* s = new LogState;  // never destroyed: threads may outlive main
  return *s;
}

std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::uint64_t> g_suppressed{0};
std::atomic<std::uint64_t> g_rate_limit{128};  // events / thread / name / second

LogBuffer& local_buffer() {
  thread_local std::shared_ptr<LogBuffer> buf = [] {
    auto b = std::make_shared<LogBuffer>();
    LogState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    b->capacity = s.capacity;
    b->ring = std::make_unique<Slot[]>(b->capacity);
    s.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

/// Per-thread token bucket keyed by event name: `count` admissions in
/// second `sec`, `suppressed` rejections awaiting the next admission.
struct RateState {
  std::uint64_t sec = ~std::uint64_t{0};
  std::uint64_t count = 0;
  std::uint64_t suppressed = 0;
};

std::unordered_map<std::string, RateState>& rate_map() {
  // Plain thread_local (not leaked like the ring, which the exporter
  // must outlive): nothing reads another thread's rate state, and a
  // per-connection daemon thread must not leak its map on exit.
  thread_local std::unordered_map<std::string, RateState> m;
  return m;
}

void store_text(Slot& s, std::string_view name, std::string_view fields) {
  char buf[Slot::kTextBytes];
  if (!name.empty()) std::memcpy(buf, name.data(), name.size());
  // A dropped field body arrives as a default view whose data() is null.
  if (!fields.empty())
    std::memcpy(buf + name.size(), fields.data(), fields.size());
  const std::size_t bytes = name.size() + fields.size();
  const std::size_t words = (bytes + 7) / 8;
  if (const std::size_t tail = words * 8 - bytes; tail != 0)
    std::memset(buf + bytes, 0, tail);
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t word;
    std::memcpy(&word, buf + w * 8, 8);
    s.text[w].store(word, std::memory_order_relaxed);
  }
}

/// Copy one slot under its seqlock. False when the slot is empty or the
/// writer lapped us during the copy (the event was overwritten anyway).
bool read_slot(const Slot& s, LogEvent& out) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t v1 = s.version.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) continue;  // mid-write
    LogEvent e;
    e.seq = s.seq.load(std::memory_order_relaxed);
    e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    e.request_id = s.request_id.load(std::memory_order_relaxed);
    e.suppressed = s.suppressed.load(std::memory_order_relaxed);
    e.severity = static_cast<Severity>(
        s.severity.load(std::memory_order_relaxed) & 0x3);
    e.truncated = s.truncated.load(std::memory_order_relaxed) != 0;
    std::uint32_t nlen = s.name_len.load(std::memory_order_relaxed);
    std::uint32_t flen = s.fields_len.load(std::memory_order_relaxed);
    nlen = std::min<std::uint32_t>(nlen, Slot::kTextBytes);
    flen = std::min<std::uint32_t>(flen, Slot::kTextBytes - nlen);
    char buf[Slot::kTextBytes];
    const std::size_t words = (static_cast<std::size_t>(nlen) + flen + 7) / 8;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t word = s.text[w].load(std::memory_order_relaxed);
      std::memcpy(buf + w * 8, &word, 8);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.version.load(std::memory_order_relaxed) != v1) continue;
    if (e.seq == 0) return false;  // never written
    e.event.assign(buf, nlen);
    e.fields.assign(buf + nlen, flen);
    out = std::move(e);
    return true;
  }
  return false;  // writer keeps lapping this slot; its event is gone anyway
}

/// Retained events of one buffer with recorded-index in [from, n).
/// Caller provides n = recorded.load(acquire).
void collect_buffer(const LogBuffer& b, std::uint64_t from, std::uint64_t n,
                    std::vector<LogEvent>& out) {
  const std::uint64_t cap = b.capacity;
  const std::uint64_t oldest = n > cap ? n - cap : 0;
  for (std::uint64_t k = std::max(from, oldest); k < n; ++k) {
    LogEvent e;
    if (read_slot(b.ring[static_cast<std::size_t>(k % cap)], e))
      out.push_back(std::move(e));
  }
}

std::vector<LogEvent> collect_all() {
  std::vector<LogEvent> events;
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& b : s.buffers)
    collect_buffer(*b, 0, b->recorded.load(std::memory_order_acquire), events);
  std::sort(events.begin(), events.end(),
            [](const LogEvent& a, const LogEvent& b) { return a.seq < b.seq; });
  return events;
}

}  // namespace

// ---------------------------------------------------------- record path

namespace detail {

void log_event_at(Severity sev, std::string_view event, const LogFields& fields,
                  std::uint64_t ts_ns) {
  if (!log_enabled()) return;

  // Rate limit before touching the ring: repeated events burn a map
  // lookup and nothing else.
  RateState& rs = rate_map()[std::string(event)];
  const std::uint64_t sec = ts_ns / 1000000000ull;
  if (rs.sec != sec) {
    rs.sec = sec;
    rs.count = 0;
  }
  if (rs.count >= g_rate_limit.load(std::memory_order_relaxed)) {
    ++rs.suppressed;
    g_suppressed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++rs.count;
  const std::uint64_t carried = rs.suppressed;
  rs.suppressed = 0;

  LogBuffer& b = local_buffer();
  const std::uint64_t n = b.recorded.load(std::memory_order_relaxed);
  Slot& s = b.ring[static_cast<std::size_t>(n % b.capacity)];

  std::string_view name = event.substr(0, Slot::kMaxNameBytes);
  std::string_view body = fields.body();
  bool truncated = false;
  if (name.size() + body.size() > Slot::kTextBytes) {
    // The field body is rendered JSON; cutting it mid-member would
    // corrupt the line, so an oversized body is dropped whole.
    body = {};
    truncated = true;
  }

  const std::uint64_t v = s.version.load(std::memory_order_relaxed);
  s.version.store(v + 1, std::memory_order_relaxed);  // odd: write in progress
  std::atomic_thread_fence(std::memory_order_release);
  s.seq.store(g_seq.fetch_add(1, std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
  s.ts_ns.store(ts_ns, std::memory_order_relaxed);
  s.request_id.store(current_item_id(), std::memory_order_relaxed);
  s.suppressed.store(carried, std::memory_order_relaxed);
  s.severity.store(static_cast<std::uint32_t>(sev), std::memory_order_relaxed);
  s.name_len.store(static_cast<std::uint32_t>(name.size()),
                   std::memory_order_relaxed);
  s.fields_len.store(static_cast<std::uint32_t>(body.size()),
                     std::memory_order_relaxed);
  s.truncated.store(truncated ? 1 : 0, std::memory_order_relaxed);
  store_text(s, name, body);
  s.version.store(v + 2, std::memory_order_release);  // even: consistent

  b.recorded.store(n + 1, std::memory_order_release);
}

}  // namespace detail

void log_event(Severity sev, std::string_view event) {
  detail::log_event_at(sev, event, LogFields{}, now_ns());
}

void log_event(Severity sev, std::string_view event, const LogFields& fields) {
  detail::log_event_at(sev, event, fields, now_ns());
}

// -------------------------------------------------------------- queries

LogStats log_stats() {
  LogStats out;
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  out.threads = s.buffers.size();
  for (const auto& b : s.buffers) {
    const std::uint64_t n = b->recorded.load(std::memory_order_acquire);
    out.recorded += n;
    if (n > b->capacity) out.dropped += n - b->capacity;
  }
  out.suppressed = g_suppressed.load(std::memory_order_relaxed);
  return out;
}

void set_log_buffer_capacity(std::size_t events) {
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.capacity = events < 8 ? 8 : events;
}

void set_log_rate_limit(std::uint64_t per_second) {
  g_rate_limit.store(per_second < 1 ? 1 : per_second, std::memory_order_relaxed);
}

std::vector<LogEvent> log_tail(std::size_t max) {
  std::vector<LogEvent> events = collect_all();
  if (events.size() > max)
    events.erase(events.begin(),
                 events.begin() + static_cast<std::ptrdiff_t>(events.size() - max));
  return events;
}

std::string LogEvent::to_json() const {
  std::string out = "{\"seq\":" + std::to_string(seq);
  out += ",\"ts_ns\":" + std::to_string(ts_ns);
  out += ",\"sev\":\"";
  out += obs::to_string(severity);
  out += "\",\"req\":" + std::to_string(request_id);
  out += ",\"event\":\"";
  out += json_escape(event);
  out += '"';
  if (!fields.empty()) {
    out += ',';
    out += fields;
  }
  if (suppressed != 0) out += ",\"suppressed\":" + std::to_string(suppressed);
  if (truncated) out += ",\"truncated\":true";
  out += '}';
  return out;
}

std::string log_jsonl() {
  std::string out;
  for (const LogEvent& e : collect_all()) {
    out += e.to_json();
    out += '\n';
  }
  return out;
}

bool write_log(const std::string& path) {
  const std::string text = log_jsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

// ------------------------------------------------------------ streaming

namespace {

struct StreamState {
  std::mutex mutex;  // guards file/path and the buffers' drained cursors
  std::FILE* file = nullptr;
  std::string path;

  std::thread flusher;
  std::mutex cv_mutex;
  std::condition_variable cv;
  bool stop = false;
  bool atexit_registered = false;
};

StreamState& stream() {
  static StreamState* s = new StreamState;
  return *s;
}

/// Append every not-yet-drained event to the stream file. Batches are
/// sorted by seq; across batches, a writer that stalled mid-record can
/// land a lower seq in a later batch — consumers sort on the embedded
/// seq when exact global order matters.
void drain_locked(StreamState& st) {
  if (st.file == nullptr) return;
  std::vector<LogEvent> batch;
  {
    LogState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& b : s.buffers) {
      const std::uint64_t n = b->recorded.load(std::memory_order_acquire);
      collect_buffer(*b, b->drained, n, batch);
      b->drained = n;
    }
  }
  std::sort(batch.begin(), batch.end(),
            [](const LogEvent& a, const LogEvent& b) { return a.seq < b.seq; });
  for (const LogEvent& e : batch) {
    const std::string line = e.to_json();
    std::fwrite(line.data(), 1, line.size(), st.file);
    std::fputc('\n', st.file);
  }
  if (!batch.empty()) std::fflush(st.file);
}

void stop_flusher(StreamState& st) {
  if (!st.flusher.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(st.cv_mutex);
    st.stop = true;
  }
  st.cv.notify_all();
  st.flusher.join();
  st.stop = false;
}

}  // namespace

void drain_log_stream() {
  StreamState& st = stream();
  std::lock_guard<std::mutex> lock(st.mutex);
  drain_locked(st);
}

void set_log_stream_path(const std::string& path) {
  StreamState& st = stream();
  stop_flusher(st);
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    if (st.file != nullptr) {
      drain_locked(st);
      std::fclose(st.file);
      st.file = nullptr;
      st.path.clear();
    }
    if (!path.empty()) {
      st.file = std::fopen(path.c_str(), "a");
      if (st.file != nullptr) st.path = path;
    }
  }
  if (st.file == nullptr) return;

  set_log_enabled(true);
  if (!st.atexit_registered) {
    st.atexit_registered = true;
    // Normal exit: join the flusher and close the file before stdio
    // teardown. Fatal signals skip this — the periodic drain is what
    // preserves the log in that case.
    std::atexit([] { set_log_stream_path(""); });
  }
  st.flusher = std::thread([&st] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(st.cv_mutex);
        st.cv.wait_for(lock, std::chrono::milliseconds(200),
                       [&st] { return st.stop; });
        if (st.stop) return;
      }
      drain_log_stream();
    }
  });
}

void clear_log() {
  StreamState& st = stream();
  std::lock_guard<std::mutex> stream_lock(st.mutex);
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& b : s.buffers) {
    b->recorded.store(0, std::memory_order_release);
    b->drained = 0;
  }
}

}  // namespace fsr::obs
