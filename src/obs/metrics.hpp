// Metrics registry: counters, gauges, and latency histograms on
// per-thread shards.
//
// Write paths are designed for the corpus engine's hot loops:
//  - Counter::add is one relaxed fetch_add on a cache-line-padded shard
//    picked by a stable per-thread index — no locks, no contention
//    between pool workers. It is deliberately unconditional, so a
//    counter also serves as an optimizer-proof benchmark sink (the
//    FETCH-like frame-height profiling uses this; eliding the add when
//    metrics are off would let the compiler delete the profiling work
//    the paper's §V-D run-time comparison measures).
//  - Histogram::record is a handful of relaxed shard adds, guarded by
//    the metrics-enabled flag (one relaxed load) so disabled runs pay a
//    single branch per site.
//  - Reads (value(), percentile(), to_json()) merge the shards; the
//    merge is a plain sum, so it is deterministic for a given set of
//    recorded values no matter how many threads produced them.
//
// Instruments are created on first use by name and never destroyed;
// hot sites should cache the reference in a local static.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace fsr::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;

inline constexpr std::size_t kShards = 16;

/// Stable per-thread shard index in [0, kShards).
std::size_t shard_index();

struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on);

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const;
  void reset();

 private:
  detail::ShardCell shards_[detail::kShards];
};

/// Last-set value plus a running maximum (e.g. pool queue depth).
class Gauge {
 public:
  void set(std::int64_t v);
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Log2-bucketed latency histogram (values in nanoseconds). Percentiles
/// interpolate linearly inside the winning bucket — plenty for the
/// p50/p95/p99 the reports need.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;  // bucket i holds values with bit_width i

  void record(std::uint64_t value_ns);
  void record_seconds(double s) {
    record(s <= 0.0 ? 0 : static_cast<std::uint64_t>(s * 1e9));
  }

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum_ns() const;
  [[nodiscard]] std::uint64_t max_ns() const;
  /// p in [0, 100]; 0 with no samples.
  [[nodiscard]] double percentile_ns(double p) const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBuckets]{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  Shard shards_[detail::kShards];
  std::atomic<std::uint64_t> max_{0};
};

class WindowHistogram;  // window.hpp — rolling 1s-slot latency windows

class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  WindowHistogram& window(std::string_view name);

  /// Deterministic snapshot (names sorted) of every instrument.
  [[nodiscard]] std::string to_json() const;
  bool write_json(const std::string& path) const;

  /// Zero every instrument (instruments stay registered). For tests
  /// and for isolating measurement passes.
  void reset();
};

/// Shorthands for Registry::instance().
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);
WindowHistogram& window(std::string_view name);

}  // namespace fsr::obs
