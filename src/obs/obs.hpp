// Observability session wiring: which exports are on, and where they go.
//
// Three independent artifacts, each enabled by giving it a path:
//   trace    -> Chrome trace-event JSON   (REPRO_TRACE / --trace-out)
//   metrics  -> counters/gauges/histogram snapshot (REPRO_METRICS / --metrics-out)
//   report   -> per-binary JSONL run reports (REPRO_REPORT / --report-out)
//
// Env values of "1" map to default filenames (run.trace.json,
// run.metrics.json, run.report.jsonl). Setting a trace or metrics path
// also flips the corresponding enabled flag, so instrumentation starts
// recording. write_outputs() flushes everything configured; it is also
// registered atexit the first time any path is set, so a bench that
// forgets to call it still leaves its artifacts behind.
#pragma once

#include <string>

namespace fsr::obs {

void set_trace_path(std::string path);    // "" disables trace export + recording
void set_metrics_path(std::string path);  // "" disables metrics export + recording
void set_report_path(std::string path);   // "" disables run reports

/// Structured event log (eventlog.hpp), streaming: events append to the
/// file every ~200 ms while the process runs — the live-log shape a
/// daemon needs, vs the write-at-exit shape of the other three.
/// "" stops the stream; the log stays enabled if it already was.
void set_log_path(std::string path);

const std::string& trace_path();
const std::string& metrics_path();
const std::string& report_path();
const std::string& log_path();

/// Read REPRO_TRACE / REPRO_METRICS / REPRO_REPORT / REPRO_LOG.
/// Idempotent.
void init_from_env();

/// Consume --trace-out P / --metrics-out P / --report-out P /
/// --log-out P from argv (compacting it in place; argv[0] untouched)
/// and return the new argc. Unknown arguments pass through for the
/// caller's own parser.
int parse_cli_flags(int argc, char** argv);

/// Write every configured artifact: trace JSON, metrics JSON, report
/// summary line. Safe to call more than once (files are rewritten /
/// the report finalize is idempotent).
void write_outputs();

/// Install SIGINT/SIGTERM handlers that flush the configured artifacts
/// before the process dies. atexit alone loses every artifact on a
/// signal (atexit handlers only run on normal exit), so a ^C'd bench or
/// a SIGTERM'd daemon used to leave nothing behind. Two modes:
///
///  - Default (terminate mode): the handler flushes once — guarded by
///    an atomic so a second signal mid-flush cannot re-enter — then
///    restores the default disposition and re-raises, preserving the
///    conventional 128+sig exit status.
///  - Notify mode (set_signal_notify_fd): the handler only write()s one
///    byte to `fd` — async-signal-safe — and returns; a long-lived
///    event loop (fsrd's accept loop) sees the byte, drains, and
///    flushes on its normal shutdown path.
///
/// Idempotent; safe to call before or after paths are configured.
void install_signal_flush();

/// Switch installed handlers into notify mode (-1 reverts to terminate
/// mode). The daemon points this at its self-pipe.
void set_signal_notify_fd(int fd);

/// The last signal a handler observed (0 when none). Lets shutdown
/// paths report *why* they are exiting.
int last_signal();

}  // namespace fsr::obs
