#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "obs/json.hpp"
#include "obs/window.hpp"

namespace fsr::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

}  // namespace detail

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t v) {
  value_.store(v, std::memory_order_relaxed);
  std::int64_t prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t value_ns) {
  if (!metrics_enabled()) return;  // single relaxed load + branch when off
  Shard& s = shards_[detail::shard_index()];
  s.buckets[std::bit_width(value_ns)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value_ns, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (value_ns > prev &&
         !max_.compare_exchange_weak(prev, value_ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::sum_ns() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::max_ns() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::percentile_ns(double p) const {
  std::uint64_t merged[kBuckets] = {};
  std::uint64_t total = 0;
  for (const auto& s : shards_)
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = s.buckets[b].load(std::memory_order_relaxed);
      merged[b] += n;
      total += n;
    }
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the target sample (1-based, nearest-rank).
  std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (merged[b] == 0) continue;
    if (seen + merged[b] >= rank) {
      // Bucket b holds values in [2^(b-1), 2^b) (bucket 0 holds 0).
      const double lo = b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (b - 1));
      const double hi = static_cast<double>(b >= 63 ? ~std::uint64_t{0}
                                                    : (std::uint64_t{1} << b));
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(merged[b]);
      return lo + (hi - lo) * frac;
    }
    seen += merged[b];
  }
  return static_cast<double>(max_ns());
}

void Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
  max_.store(0, std::memory_order_relaxed);
}

namespace {

/// Name-keyed instrument storage. std::map keeps to_json() output in
/// sorted (deterministic) order; instruments live forever so cached
/// references at call sites never dangle.
struct RegistryState {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::string, std::unique_ptr<WindowHistogram>, std::less<>> windows;
};

RegistryState& reg_state() {
  static RegistryState* s = new RegistryState;  // leaked: outlives all threads
  return *s;
}

template <typename Map>
auto& find_or_create(Map& map, std::string_view name, std::mutex& mutex) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  return *it->second;
}

}  // namespace

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  RegistryState& s = reg_state();
  return find_or_create(s.counters, name, s.mutex);
}

Gauge& Registry::gauge(std::string_view name) {
  RegistryState& s = reg_state();
  return find_or_create(s.gauges, name, s.mutex);
}

Histogram& Registry::histogram(std::string_view name) {
  RegistryState& s = reg_state();
  return find_or_create(s.histograms, name, s.mutex);
}

WindowHistogram& Registry::window(std::string_view name) {
  RegistryState& s = reg_state();
  return find_or_create(s.windows, name, s.mutex);
}

std::string Registry::to_json() const {
  RegistryState& s = reg_state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::string out = "{\n  \"counters\": {";
  char buf[256];
  bool first = true;
  for (const auto& [name, c] : s.counters) {
    std::snprintf(buf, sizeof buf, "%s\n    \"%s\": %llu", first ? "" : ",",
                  json_escape(name).c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : s.gauges) {
    std::snprintf(buf, sizeof buf,
                  "%s\n    \"%s\": {\"value\": %lld, \"max\": %lld}",
                  first ? "" : ",", json_escape(name).c_str(),
                  static_cast<long long>(g->value()),
                  static_cast<long long>(g->max()));
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    std::snprintf(buf, sizeof buf,
                  "%s\n    \"%s\": {\"count\": %llu, \"sum_ns\": %llu,"
                  " \"p50_ns\": %.0f, \"p95_ns\": %.0f, \"p99_ns\": %.0f,"
                  " \"max_ns\": %llu}",
                  first ? "" : ",", json_escape(name).c_str(),
                  static_cast<unsigned long long>(h->count()),
                  static_cast<unsigned long long>(h->sum_ns()),
                  h->percentile_ns(50), h->percentile_ns(95), h->percentile_ns(99),
                  static_cast<unsigned long long>(h->max_ns()));
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"windows\": {";
  first = true;
  for (const auto& [name, w] : s.windows) {
    // Two views per window: the last 10s and the last 60s.
    const WindowHistogram::Snapshot w10 = w->snapshot(10);
    const WindowHistogram::Snapshot w60 = w->snapshot(60);
    const auto emit_view = [&](const char* key,
                               const WindowHistogram::Snapshot& v) {
      std::snprintf(buf, sizeof buf,
                    "\"%s\": {\"count\": %llu, \"rate_per_sec\": %.3f,"
                    " \"p50_ns\": %.0f, \"p95_ns\": %.0f, \"p99_ns\": %.0f,"
                    " \"max_ns\": %llu}",
                    key, static_cast<unsigned long long>(v.count),
                    v.rate_per_sec, v.p50_ns, v.p95_ns, v.p99_ns,
                    static_cast<unsigned long long>(v.max_ns));
      out += buf;
    };
    out += first ? "" : ",";
    out += "\n    \"" + json_escape(name) + "\": {";
    emit_view("last_10s", w10);
    out += ", ";
    emit_view("last_60s", w60);
    out += '}';
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

bool Registry::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void Registry::reset() {
  RegistryState& s = reg_state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& [name, c] : s.counters) c->reset();
  for (auto& [name, g] : s.gauges) g->reset();
  for (auto& [name, h] : s.histograms) h->reset();
  for (auto& [name, w] : s.windows) w->reset();
}

Counter& counter(std::string_view name) { return Registry::instance().counter(name); }
Gauge& gauge(std::string_view name) { return Registry::instance().gauge(name); }
Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}
WindowHistogram& window(std::string_view name) {
  return Registry::instance().window(name);
}

}  // namespace fsr::obs
