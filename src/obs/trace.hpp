// Span tracer: where does wall-clock go inside a corpus run?
//
// Every instrumented site opens an RAII Span (via TRACE_SPAN) that, when
// tracing is enabled, records a {name, item id, begin, end} event into a
// lock-free per-thread ring buffer. Disabled, a span costs exactly one
// relaxed atomic load and a branch — cheap enough to leave compiled into
// the hot paths of the corpus engine without perturbing the bench tables.
//
// Buffers are exported as Chrome trace-event JSON (chrome://tracing or
// Perfetto), one lane per thread; pool workers name their lanes so a
// trace of bench_table3 shows exactly how binaries flowed across the
// work-stealing pool. Rings have fixed capacity: a run that outgrows
// them keeps the newest events and reports how many were dropped.
//
// Export is meant to run after parallel regions have quiesced (pools
// joined); the counters involved are atomics, so a concurrent export
// merely risks a stale tail, not undefined behavior.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace fsr::obs {

/// Monotonic nanoseconds (steady_clock — the same timebase as
/// util::Stopwatch, so spans and stopwatch figures agree).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class FlightScope;

namespace detail {
extern std::atomic<bool> g_trace_enabled;
/// Active per-request flight recorder on this thread (flight.hpp), or
/// nullptr. Non-null makes spans record even with tracing off.
extern thread_local FlightScope* t_flight;
}  // namespace detail

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Should a Span capture? True when global tracing is on or a
/// FlightScope is recording this thread's spans.
inline bool span_capture_enabled() {
  return trace_enabled() || detail::t_flight != nullptr;
}

void set_trace_enabled(bool on);

/// Events-per-thread ring capacity for buffers registered after this
/// call (existing buffers keep their size). Minimum 8.
void set_trace_buffer_capacity(std::size_t events);

/// Label the calling thread's lane in the exported trace (e.g.
/// "pool-worker-3"). Safe to call repeatedly; the last name wins.
void set_thread_name(std::string name);

/// Spans default their item id to this thread-local ambient value, so a
/// corpus job can tag every nested span with its binary's index without
/// threading the id through each callee.
std::uint64_t current_item_id();

class ScopedItemId {
 public:
  explicit ScopedItemId(std::uint64_t id);
  ~ScopedItemId();
  ScopedItemId(const ScopedItemId&) = delete;
  ScopedItemId& operator=(const ScopedItemId&) = delete;

 private:
  std::uint64_t prev_;
};

/// Sentinel: "use current_item_id()".
inline constexpr std::uint64_t kAmbientId = ~std::uint64_t{0};

/// Append one completed span to the calling thread's ring.
/// `name` must point at storage that outlives the export (string
/// literals at the instrumented sites).
void record_span(const char* name, std::uint64_t id, std::uint64_t begin_ns,
                 std::uint64_t end_ns);

class Span {
 public:
  explicit Span(const char* name, std::uint64_t id = kAmbientId) {
    if (!span_capture_enabled()) return;  // the whole disabled-path cost
    name_ = name;
    id_ = id;
    begin_ns_ = now_ns();
  }
  ~Span() {
    if (name_ != nullptr) record_span(name_, id_, begin_ns_, now_ns());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t begin_ns_ = 0;
};

struct TraceStats {
  std::size_t threads = 0;     // registered ring buffers
  std::uint64_t recorded = 0;  // spans ever recorded
  std::uint64_t dropped = 0;   // overwritten by ring wraparound
};

TraceStats trace_stats();

/// Drop all buffered events (buffers stay registered). For tests and
/// for isolating measurement passes.
void clear_trace();

/// The buffered spans as a Chrome trace-event JSON document.
std::string chrome_trace_json();

/// chrome_trace_json() to a file. False on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace fsr::obs

#define FSR_OBS_CONCAT2(a, b) a##b
#define FSR_OBS_CONCAT(a, b) FSR_OBS_CONCAT2(a, b)

/// TRACE_SPAN("decode") or TRACE_SPAN("analyze", binary_id): RAII span
/// covering the rest of the enclosing scope.
#define TRACE_SPAN(...) \
  ::fsr::obs::Span FSR_OBS_CONCAT(fsr_obs_span_, __LINE__){__VA_ARGS__}
