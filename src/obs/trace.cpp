#include "obs/trace.hpp"

#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/flight.hpp"
#include "obs/json.hpp"

namespace fsr::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t id = 0;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

/// One ring per thread. Written only by its owner; `recorded` is the
/// publication point (release store after the slot write) so an export
/// sees complete events.
struct ThreadBuffer {
  std::vector<TraceEvent> ring;
  std::atomic<std::uint64_t> recorded{0};
  std::string name;
  std::uint64_t lane = 0;
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::size_t capacity = std::size_t{1} << 14;  // 16Ki events/thread (~512KiB)
  std::uint64_t next_lane = 1;
};

TraceState& state() {
  static TraceState* s = new TraceState;  // never destroyed: threads may outlive main
  return *s;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    b->ring.resize(s.capacity);
    b->lane = s.next_lane++;
    b->name = "thread-" + std::to_string(b->lane);
    s.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

void set_trace_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_buffer_capacity(std::size_t events) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.capacity = events < 8 ? 8 : events;
}

void set_thread_name(std::string name) {
  ThreadBuffer& b = local_buffer();
  std::lock_guard<std::mutex> lock(state().mutex);  // exporter reads names
  b.name = std::move(name);
}

namespace {
thread_local std::uint64_t t_item_id = 0;
}  // namespace

std::uint64_t current_item_id() { return t_item_id; }

ScopedItemId::ScopedItemId(std::uint64_t id) : prev_(t_item_id) { t_item_id = id; }
ScopedItemId::~ScopedItemId() { t_item_id = prev_; }

void record_span(const char* name, std::uint64_t id, std::uint64_t begin_ns,
                 std::uint64_t end_ns) {
  if (id == kAmbientId) id = t_item_id;
  if (detail::t_flight != nullptr) {
    detail::t_flight->note_span(name, id, begin_ns, end_ns);
    // Flight-only capture: the span was admitted by span_capture_enabled()
    // solely for this scope, so keep it out of the global trace rings.
    // Direct record_span calls with no scope active append as always.
    if (!trace_enabled()) return;
  }
  ThreadBuffer& b = local_buffer();
  const std::uint64_t n = b.recorded.load(std::memory_order_relaxed);
  b.ring[static_cast<std::size_t>(n % b.ring.size())] = {name, id, begin_ns, end_ns};
  b.recorded.store(n + 1, std::memory_order_release);
}

TraceStats trace_stats() {
  TraceStats out;
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  out.threads = s.buffers.size();
  for (const auto& b : s.buffers) {
    const std::uint64_t n = b->recorded.load(std::memory_order_acquire);
    out.recorded += n;
    if (n > b->ring.size()) out.dropped += n - b->ring.size();
  }
  return out;
}

void clear_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& b : s.buffers) b->recorded.store(0, std::memory_order_release);
}

std::string chrome_trace_json() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);

  // Timestamps are relative to the earliest buffered span, so the trace
  // opens at t=0 regardless of how long the process ran beforehand.
  std::uint64_t epoch_ns = ~std::uint64_t{0};
  for (const auto& b : s.buffers) {
    const std::uint64_t n = b->recorded.load(std::memory_order_acquire);
    const std::uint64_t cap = b->ring.size();
    const std::uint64_t kept = n < cap ? n : cap;
    for (std::uint64_t k = 0; k < kept; ++k) {
      const TraceEvent& e = b->ring[static_cast<std::size_t>((n - kept + k) % cap)];
      if (e.name != nullptr && e.begin_ns < epoch_ns) epoch_ns = e.begin_ns;
    }
  }
  if (epoch_ns == ~std::uint64_t{0}) epoch_ns = 0;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  const auto emit = [&](const char* text) {
    if (!first) out += ',';
    first = false;
    out += text;
  };

  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                "\"args\":{\"name\":\"funseeker-repro\"}}");
  emit(buf);

  for (const auto& b : s.buffers) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%llu,"
                  "\"args\":{\"name\":\"%s\"}}",
                  static_cast<unsigned long long>(b->lane),
                  json_escape(b->name).c_str());
    emit(buf);

    const std::uint64_t n = b->recorded.load(std::memory_order_acquire);
    const std::uint64_t cap = b->ring.size();
    const std::uint64_t kept = n < cap ? n : cap;
    for (std::uint64_t k = 0; k < kept; ++k) {
      // Oldest kept event first (ring order).
      const TraceEvent& e =
          b->ring[static_cast<std::size_t>((n - kept + k) % cap)];
      if (e.name == nullptr) continue;
      const double ts_us =
          static_cast<double>(e.begin_ns - epoch_ns) / 1e3;
      const double dur_us =
          static_cast<double>(e.end_ns - e.begin_ns) / 1e3;
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":1,\"tid\":%llu,\"args\":{\"id\":%llu}}",
                    json_escape(e.name).c_str(), ts_us, dur_us,
                    static_cast<unsigned long long>(b->lane),
                    static_cast<unsigned long long>(e.id));
      emit(buf);
    }
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace fsr::obs
