// Rolling-window latency histogram: "what is the p99 *right now*?"
//
// obs::Histogram is cumulative since process start — after an hour of
// traffic, a latency regression takes another hour to move its p50. A
// WindowHistogram is a ring of 64 one-second slots, each a small log2
// histogram; a snapshot over the last N seconds (N <= 60) merges the
// slots whose epoch falls inside the window, yielding req/s and
// p50/p95/p99 that track live behavior within seconds.
//
// Recording is lock-free: the slot for the current second is claimed by
// a CAS on its epoch; the winner zeroes the slot before publishing the
// new epoch. A recorder racing the rollover can land a sample from the
// previous second in the fresh slot (or lose one to the wipe) — a
// bounded smear of a few samples per second boundary, which is noise at
// the request rates these windows summarize and irrelevant to the
// 2×-accuracy contract the service bench checks.
//
// record()/snapshot() stamp with now_ns(); the _at variants take the
// timestamp so tests are deterministic across second boundaries.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace fsr::obs {

class WindowHistogram {
 public:
  static constexpr std::size_t kSlots = 64;     // one-second slots
  static constexpr std::uint64_t kMaxWindow = 60;  // snapshot limit, seconds
  static constexpr std::size_t kBuckets = 64;   // log2, as obs::Histogram

  struct Snapshot {
    std::uint64_t window_seconds = 0;
    std::uint64_t count = 0;
    double rate_per_sec = 0.0;
    double p50_ns = 0.0;
    double p95_ns = 0.0;
    double p99_ns = 0.0;
    std::uint64_t max_ns = 0;
  };

  /// Record one sample into the current second's slot. Unconditional —
  /// call sites gate on metrics_enabled()/their own flag; window
  /// recording is request-granularity, not hot-loop-granularity.
  void record(std::uint64_t value_ns);
  void record_at(std::uint64_t value_ns, std::uint64_t ts_ns);

  /// Merge the slots covering the last `window_seconds` (clamped to
  /// [1, kMaxWindow]), including the current partial second.
  [[nodiscard]] Snapshot snapshot(std::uint64_t window_seconds) const;
  [[nodiscard]] Snapshot snapshot_at(std::uint64_t window_seconds,
                                     std::uint64_t ts_ns) const;

  void reset();

 private:
  struct Slot {
    /// Second this slot currently represents; kIdle when never used.
    std::atomic<std::uint64_t> epoch{kIdle};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> max{0};
    std::atomic<std::uint64_t> buckets[kBuckets]{};
  };
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  Slot slots_[kSlots];
};

}  // namespace fsr::obs
