// Per-binary run reports: one JSONL line per evaluated binary, plus a
// final summary line flagging outliers.
//
// eval::CorpusRunner feeds a BinaryRunRecord for every binary it
// evaluates (config tuple, prepare/decode seconds, per-tool analysis
// seconds and P/R/F1). Records append to the configured report file as
// they arrive — a crashed run still leaves every completed line on
// disk — and finalize() appends a {"type":"summary"} line with the
// slowest binaries and every binary whose F1 deviates more than 2σ
// from its profile's mean (profile = config tuple minus the program
// index, i.e. one compiler x suite x arch x kind x opt cell).
#pragma once

#include <string>
#include <vector>

namespace fsr::obs {

struct ToolRunRecord {
  std::string tool;
  double seconds = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

struct BinaryRunRecord {
  std::string binary;   // full config name, e.g. "gcc-coreutils-03-x64-pie-O2"
  std::string profile;  // grouping key for the outlier statistics
  double prepare_seconds = 0.0;
  double decode_seconds = 0.0;
  std::vector<ToolRunRecord> tools;
  /// Containment outcome ("ok", "timed-out", "parse-failed", ...).
  std::string status = "ok";
  /// One-line failure cause when status != "ok".
  std::string error;
  /// Rendered lenient-parse diagnostics ("[bad-fde] .eh_frame+0x40: ...").
  std::vector<std::string> diagnostics;
};

class RunReport {
 public:
  /// The process-wide report every corpus run appends to.
  static RunReport& instance();

  /// Target path ("" disables). Opening is lazy: the file is created on
  /// the first add().
  void set_path(std::string path);
  [[nodiscard]] bool enabled() const;

  /// Append one binary's line (thread-safe; CorpusRunner calls this
  /// from its sequenced reduction, so lines come out in config order).
  void add(const BinaryRunRecord& record);

  /// Append the summary line over everything recorded since
  /// set_path(). Idempotent until the next add().
  void finalize();

  /// How many >2σ F1 outliers the last finalize() found (for tests).
  [[nodiscard]] std::size_t last_outlier_count() const;

 private:
  RunReport() = default;
};

}  // namespace fsr::obs
