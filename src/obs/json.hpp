// Small JSON utilities for the observability exporters.
//
// The obs layer writes three machine-readable artifacts (Chrome trace,
// metrics snapshot, per-binary run reports); json_escape keeps every
// emitted string well-formed, and json_valid is the strict checker the
// tests and the CI overhead gate use to prove the artifacts parse
// without pulling in an external JSON library.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fsr::obs {

namespace detail {
struct ValueParser;
}

/// Escape `s` for embedding inside a JSON string literal (quotes are
/// not added). Control characters become \u00XX.
std::string json_escape(std::string_view s);

/// Strict recursive-descent check: true iff `text` is exactly one valid
/// JSON value (object/array/string/number/bool/null) surrounded by
/// optional whitespace. Depth-limited so malformed input cannot blow
/// the stack.
bool json_valid(std::string_view text);

/// A parsed JSON value — the read side of the obs JSON story, used by
/// the fsrd service to decode protocol requests. Deliberately tiny:
/// numbers are doubles, objects keep insertion order with linear
/// lookup (protocol frames have a handful of keys), and parsing shares
/// the validator's strictness and depth limit.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }

  /// Typed reads with a fallback when the value has another kind.
  [[nodiscard]] const std::string& as_string(const std::string& fallback) const;
  [[nodiscard]] double as_number(double fallback) const;
  [[nodiscard]] bool as_bool(bool fallback) const;
  [[nodiscard]] const std::vector<JsonValue>& items() const { return arr_; }
  /// Object members in insertion order (empty for non-objects).
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const {
    return obj_;
  }

  /// Object member by key, nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Shorthands for `find(key)` + typed read with fallback.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       const std::string& fallback = "") const;
  [[nodiscard]] double get_number(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

 private:
  friend std::optional<JsonValue> json_parse(std::string_view text);
  friend struct detail::ValueParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parse exactly one JSON value (plus surrounding whitespace), or
/// nullopt on any syntax error. Same grammar json_valid accepts.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace fsr::obs
