// Small JSON utilities for the observability exporters.
//
// The obs layer writes three machine-readable artifacts (Chrome trace,
// metrics snapshot, per-binary run reports); json_escape keeps every
// emitted string well-formed, and json_valid is the strict checker the
// tests and the CI overhead gate use to prove the artifacts parse
// without pulling in an external JSON library.
#pragma once

#include <string>
#include <string_view>

namespace fsr::obs {

/// Escape `s` for embedding inside a JSON string literal (quotes are
/// not added). Control characters become \u00XX.
std::string json_escape(std::string_view s);

/// Strict recursive-descent check: true iff `text` is exactly one valid
/// JSON value (object/array/string/number/bool/null) surrounded by
/// optional whitespace. Depth-limited so malformed input cannot blow
/// the stack.
bool json_valid(std::string_view text);

}  // namespace fsr::obs
