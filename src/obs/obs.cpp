#include "obs/obs.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <unistd.h>

#include "obs/eventlog.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace fsr::obs {

namespace {

struct Config {
  std::mutex mutex;
  std::string trace_path;
  std::string metrics_path;
  std::string log_path;
  bool env_loaded = false;
  bool atexit_registered = false;
  std::string report_path_copy;  // mirror of RunReport's path, for report_path()
};

Config& config() {
  static Config* c = new Config;
  return *c;
}

void register_atexit_locked(Config& c) {
  if (c.atexit_registered) return;
  c.atexit_registered = true;
  std::atexit([] { write_outputs(); });
}

std::string env_path(const char* var, const char* default_name) {
  const char* v = std::getenv(var);
  if (v == nullptr || *v == '\0' || std::strcmp(v, "0") == 0) return {};
  if (std::strcmp(v, "1") == 0) return default_name;
  return v;
}

}  // namespace

void set_trace_path(std::string path) {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.trace_path = std::move(path);
  set_trace_enabled(!c.trace_path.empty());
  if (!c.trace_path.empty()) register_atexit_locked(c);
}

void set_metrics_path(std::string path) {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.metrics_path = std::move(path);
  set_metrics_enabled(!c.metrics_path.empty());
  if (!c.metrics_path.empty()) register_atexit_locked(c);
}

void set_log_path(std::string path) {
  Config& c = config();
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    c.log_path = path;
    if (!path.empty()) register_atexit_locked(c);
  }
  // The stream owns its own flusher thread + atexit; it also enables
  // the log when a path is set.
  set_log_stream_path(path);
}

void set_report_path(std::string path) {
  Config& c = config();
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    c.report_path_copy = path;
    if (!path.empty()) register_atexit_locked(c);
  }
  RunReport::instance().set_path(std::move(path));
}

const std::string& trace_path() {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.trace_path;
}

const std::string& metrics_path() {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.metrics_path;
}

const std::string& report_path() {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.report_path_copy;
}

const std::string& log_path() {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.log_path;
}

void init_from_env() {
  {
    Config& c = config();
    std::lock_guard<std::mutex> lock(c.mutex);
    if (c.env_loaded) return;
    c.env_loaded = true;
  }
  if (std::string p = env_path("REPRO_TRACE", "run.trace.json"); !p.empty())
    set_trace_path(std::move(p));
  if (std::string p = env_path("REPRO_METRICS", "run.metrics.json"); !p.empty())
    set_metrics_path(std::move(p));
  if (std::string p = env_path("REPRO_REPORT", "run.report.jsonl"); !p.empty())
    set_report_path(std::move(p));
  if (std::string p = env_path("REPRO_LOG", "run.log.jsonl"); !p.empty())
    set_log_path(std::move(p));
}

int parse_cli_flags(int argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const auto takes_value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      return i + 1 < argc ? argv[++i] : "";
    };
    if (const char* v = takes_value("--trace-out"); v != nullptr) {
      set_trace_path(v);
    } else if (const char* v2 = takes_value("--metrics-out"); v2 != nullptr) {
      set_metrics_path(v2);
    } else if (const char* v3 = takes_value("--report-out"); v3 != nullptr) {
      set_report_path(v3);
    } else if (const char* v4 = takes_value("--log-out"); v4 != nullptr) {
      set_log_path(v4);
    } else {
      argv[out++] = argv[i];
    }
  }
  return out;
}

void write_outputs() {
  std::string trace, metrics;
  {
    Config& c = config();
    std::lock_guard<std::mutex> lock(c.mutex);
    trace = c.trace_path;
    metrics = c.metrics_path;
  }
  if (!trace.empty()) write_chrome_trace(trace);
  if (!metrics.empty()) Registry::instance().write_json(metrics);
  drain_log_stream();  // no-op without a stream
  RunReport::instance().finalize();
}

namespace {

std::atomic<int> g_notify_fd{-1};
std::atomic<int> g_last_signal{0};
std::atomic<bool> g_flushing{false};

void signal_handler(int sig) {
  g_last_signal.store(sig, std::memory_order_relaxed);
  const int fd = g_notify_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    // Notify mode: one async-signal-safe write; the event loop owns the
    // actual shutdown + flush.
    const char byte = static_cast<char>(sig);
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    return;
  }
  // Terminate mode. write_outputs() is not strictly async-signal-safe
  // (it allocates), but the alternative is losing every artifact of an
  // interrupted run; the exchange guard at least makes a second signal
  // during the flush die immediately instead of re-entering.
  if (!g_flushing.exchange(true, std::memory_order_acq_rel)) write_outputs();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_signal_flush() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa{};
    sa.sa_handler = signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
  });
}

void set_signal_notify_fd(int fd) {
  g_notify_fd.store(fd, std::memory_order_relaxed);
}

int last_signal() { return g_last_signal.load(std::memory_order_relaxed); }

}  // namespace fsr::obs
