#include "obs/obs.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace fsr::obs {

namespace {

struct Config {
  std::mutex mutex;
  std::string trace_path;
  std::string metrics_path;
  bool env_loaded = false;
  bool atexit_registered = false;
  std::string report_path_copy;  // mirror of RunReport's path, for report_path()
};

Config& config() {
  static Config* c = new Config;
  return *c;
}

void register_atexit_locked(Config& c) {
  if (c.atexit_registered) return;
  c.atexit_registered = true;
  std::atexit([] { write_outputs(); });
}

std::string env_path(const char* var, const char* default_name) {
  const char* v = std::getenv(var);
  if (v == nullptr || *v == '\0' || std::strcmp(v, "0") == 0) return {};
  if (std::strcmp(v, "1") == 0) return default_name;
  return v;
}

}  // namespace

void set_trace_path(std::string path) {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.trace_path = std::move(path);
  set_trace_enabled(!c.trace_path.empty());
  if (!c.trace_path.empty()) register_atexit_locked(c);
}

void set_metrics_path(std::string path) {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.metrics_path = std::move(path);
  set_metrics_enabled(!c.metrics_path.empty());
  if (!c.metrics_path.empty()) register_atexit_locked(c);
}

void set_report_path(std::string path) {
  Config& c = config();
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    c.report_path_copy = path;
    if (!path.empty()) register_atexit_locked(c);
  }
  RunReport::instance().set_path(std::move(path));
}

const std::string& trace_path() {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.trace_path;
}

const std::string& metrics_path() {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.metrics_path;
}

const std::string& report_path() {
  Config& c = config();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.report_path_copy;
}

void init_from_env() {
  {
    Config& c = config();
    std::lock_guard<std::mutex> lock(c.mutex);
    if (c.env_loaded) return;
    c.env_loaded = true;
  }
  if (std::string p = env_path("REPRO_TRACE", "run.trace.json"); !p.empty())
    set_trace_path(std::move(p));
  if (std::string p = env_path("REPRO_METRICS", "run.metrics.json"); !p.empty())
    set_metrics_path(std::move(p));
  if (std::string p = env_path("REPRO_REPORT", "run.report.jsonl"); !p.empty())
    set_report_path(std::move(p));
}

int parse_cli_flags(int argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const auto takes_value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      return i + 1 < argc ? argv[++i] : "";
    };
    if (const char* v = takes_value("--trace-out"); v != nullptr) {
      set_trace_path(v);
    } else if (const char* v2 = takes_value("--metrics-out"); v2 != nullptr) {
      set_metrics_path(v2);
    } else if (const char* v3 = takes_value("--report-out"); v3 != nullptr) {
      set_report_path(v3);
    } else {
      argv[out++] = argv[i];
    }
  }
  return out;
}

void write_outputs() {
  std::string trace, metrics;
  {
    Config& c = config();
    std::lock_guard<std::mutex> lock(c.mutex);
    trace = c.trace_path;
    metrics = c.metrics_path;
  }
  if (!trace.empty()) write_chrome_trace(trace);
  if (!metrics.empty()) Registry::instance().write_json(metrics);
  RunReport::instance().finalize();
}

}  // namespace fsr::obs
