#include "obs/flight.hpp"

#include "obs/json.hpp"

namespace fsr::obs {

namespace detail {
thread_local FlightScope* t_flight = nullptr;
}  // namespace detail

FlightScope::FlightScope(std::size_t max_spans)
    : max_spans_(max_spans < 1 ? 1 : max_spans), prev_(detail::t_flight) {
  spans_.reserve(max_spans_ < 64 ? max_spans_ : 64);
  detail::t_flight = this;
}

FlightScope::~FlightScope() { detail::t_flight = prev_; }

void FlightScope::note_span(const char* name, std::uint64_t id,
                            std::uint64_t begin_ns, std::uint64_t end_ns) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  spans_.push_back(Rec{name, id, begin_ns, end_ns});
}

std::string FlightScope::spans_json(std::uint64_t epoch_ns) const {
  std::string out = "[";
  bool first = true;
  for (const Rec& r : spans_) {
    if (!first) out += ',';
    first = false;
    const std::uint64_t at =
        r.begin_ns > epoch_ns ? (r.begin_ns - epoch_ns) / 1000 : 0;
    const std::uint64_t dur =
        r.end_ns > r.begin_ns ? (r.end_ns - r.begin_ns) / 1000 : 0;
    out += "{\"name\":\"";
    out += json_escape(r.name);
    out += "\",\"item\":" + std::to_string(r.id);
    out += ",\"at_us\":" + std::to_string(at);
    out += ",\"dur_us\":" + std::to_string(dur);
    out += '}';
  }
  if (dropped_ != 0) {
    if (!first) out += ',';
    out += "{\"name\":\"...dropped\",\"item\":0,\"at_us\":0,\"dur_us\":0,"
           "\"count\":" + std::to_string(dropped_) + '}';
  }
  out += ']';
  return out;
}

}  // namespace fsr::obs
