#include "obs/window.hpp"

#include <algorithm>
#include <bit>

#include "obs/trace.hpp"

namespace fsr::obs {

void WindowHistogram::record(std::uint64_t value_ns) {
  record_at(value_ns, now_ns());
}

void WindowHistogram::record_at(std::uint64_t value_ns, std::uint64_t ts_ns) {
  const std::uint64_t sec = ts_ns / 1000000000ull;
  Slot& s = slots_[static_cast<std::size_t>(sec % kSlots)];
  std::uint64_t epoch = s.epoch.load(std::memory_order_relaxed);
  if (epoch != sec) {
    // Claim the slot for this second; the winner wipes the previous
    // second's contents. Losers fall through and record immediately —
    // a sample can land before the wipe finishes (documented smear).
    if (s.epoch.compare_exchange_strong(epoch, sec,
                                        std::memory_order_relaxed)) {
      s.count.store(0, std::memory_order_relaxed);
      s.max.store(0, std::memory_order_relaxed);
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    } else if (epoch != sec) {
      return;  // a third epoch raced in; drop rather than pollute it
    }
  }
  s.buckets[std::bit_width(value_ns)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev = s.max.load(std::memory_order_relaxed);
  while (value_ns > prev &&
         !s.max.compare_exchange_weak(prev, value_ns,
                                      std::memory_order_relaxed)) {
  }
}

WindowHistogram::Snapshot WindowHistogram::snapshot(
    std::uint64_t window_seconds) const {
  return snapshot_at(window_seconds, now_ns());
}

WindowHistogram::Snapshot WindowHistogram::snapshot_at(
    std::uint64_t window_seconds, std::uint64_t ts_ns) const {
  window_seconds = std::clamp<std::uint64_t>(window_seconds, 1, kMaxWindow);
  const std::uint64_t sec = ts_ns / 1000000000ull;
  const std::uint64_t begin = sec >= window_seconds - 1 ? sec - (window_seconds - 1) : 0;

  std::uint64_t merged[kBuckets] = {};
  Snapshot out;
  out.window_seconds = window_seconds;
  for (const Slot& s : slots_) {
    const std::uint64_t epoch = s.epoch.load(std::memory_order_relaxed);
    if (epoch == kIdle || epoch < begin || epoch > sec) continue;
    out.count += s.count.load(std::memory_order_relaxed);
    out.max_ns = std::max(out.max_ns, s.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b)
      merged[b] += s.buckets[b].load(std::memory_order_relaxed);
  }
  out.rate_per_sec =
      static_cast<double>(out.count) / static_cast<double>(window_seconds);

  // Percentiles: nearest-rank with linear interpolation inside the
  // winning log2 bucket — the same estimate obs::Histogram reports, so
  // lifetime and windowed figures are comparable.
  const auto percentile = [&](double p) -> double {
    if (out.count == 0) return 0.0;
    std::uint64_t rank =
        static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(out.count));
    rank = std::clamp<std::uint64_t>(rank, 1, out.count);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (merged[b] == 0) continue;
      if (seen + merged[b] >= rank) {
        const double lo =
            b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (b - 1));
        const double hi = static_cast<double>(
            b >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << b));
        const double frac =
            static_cast<double>(rank - seen) / static_cast<double>(merged[b]);
        return lo + (hi - lo) * frac;
      }
      seen += merged[b];
    }
    return static_cast<double>(out.max_ns);
  };
  out.p50_ns = percentile(50);
  out.p95_ns = percentile(95);
  out.p99_ns = percentile(99);
  return out;
}

void WindowHistogram::reset() {
  for (Slot& s : slots_) {
    s.epoch.store(kIdle, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

}  // namespace fsr::obs
