#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>

#include "obs/json.hpp"

namespace fsr::obs {

namespace {

/// The light per-record residue the summary needs.
struct Digest {
  std::string binary;
  std::string profile;
  double total_seconds = 0.0;
  std::vector<std::pair<std::string, double>> tool_f1;
};

struct ReportState {
  std::mutex mutex;
  std::string path;
  std::FILE* file = nullptr;
  std::vector<Digest> digests;
  bool finalized = false;
  std::size_t last_outliers = 0;
};

ReportState& state() {
  static ReportState* s = new ReportState;
  return *s;
}

void close_file(ReportState& s) {
  if (s.file != nullptr) {
    std::fclose(s.file);
    s.file = nullptr;
  }
}

}  // namespace

RunReport& RunReport::instance() {
  static RunReport r;
  return r;
}

void RunReport::set_path(std::string path) {
  ReportState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  close_file(s);
  s.path = std::move(path);
  s.digests.clear();
  s.finalized = false;
  s.last_outliers = 0;
  if (!s.path.empty()) s.file = std::fopen(s.path.c_str(), "w");
}

bool RunReport::enabled() const {
  ReportState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.file != nullptr || (!s.path.empty() && !s.finalized);
}

void RunReport::add(const BinaryRunRecord& r) {
  ReportState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.path.empty()) return;
  if (s.file == nullptr) {
    s.file = std::fopen(s.path.c_str(), "a");
    if (s.file == nullptr) return;
  }
  s.finalized = false;

  std::fprintf(s.file,
               "{\"type\":\"binary\",\"binary\":\"%s\",\"profile\":\"%s\","
               "\"status\":\"%s\",",
               json_escape(r.binary).c_str(), json_escape(r.profile).c_str(),
               json_escape(r.status).c_str());
  if (!r.error.empty())
    std::fprintf(s.file, "\"error\":\"%s\",", json_escape(r.error).c_str());
  if (!r.diagnostics.empty()) {
    std::fprintf(s.file, "\"diagnostics\":[");
    for (std::size_t i = 0; i < r.diagnostics.size(); ++i)
      std::fprintf(s.file, "%s\"%s\"", i == 0 ? "" : ",",
                   json_escape(r.diagnostics[i]).c_str());
    std::fprintf(s.file, "],");
  }
  std::fprintf(s.file,
               "\"prepare_seconds\":%.6f,\"decode_seconds\":%.6f,\"tools\":[",
               r.prepare_seconds, r.decode_seconds);
  Digest d{r.binary, r.profile, r.prepare_seconds + r.decode_seconds, {}};
  for (std::size_t i = 0; i < r.tools.size(); ++i) {
    const ToolRunRecord& t = r.tools[i];
    std::fprintf(s.file,
                 "%s{\"tool\":\"%s\",\"seconds\":%.6f,\"precision\":%.6f,"
                 "\"recall\":%.6f,\"f1\":%.6f}",
                 i == 0 ? "" : ",", json_escape(t.tool).c_str(), t.seconds,
                 t.precision, t.recall, t.f1);
    d.total_seconds += t.seconds;
    d.tool_f1.emplace_back(t.tool, t.f1);
  }
  std::fprintf(s.file, "]}\n");
  std::fflush(s.file);
  s.digests.push_back(std::move(d));
}

void RunReport::finalize() {
  ReportState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.path.empty() || s.finalized) return;
  if (s.file == nullptr) {
    s.file = std::fopen(s.path.c_str(), "a");
    if (s.file == nullptr) return;
  }

  // Slowest binaries by total per-binary cost (prepare+decode+analyses).
  std::vector<const Digest*> by_cost;
  by_cost.reserve(s.digests.size());
  for (const Digest& d : s.digests) by_cost.push_back(&d);
  std::stable_sort(by_cost.begin(), by_cost.end(),
                   [](const Digest* a, const Digest* b) {
                     return a->total_seconds > b->total_seconds;
                   });
  if (by_cost.size() > 5) by_cost.resize(5);

  // Per-(profile, tool) F1 mean and sigma, then flag >2σ deviants.
  struct Stats {
    double sum = 0.0, sum_sq = 0.0;
    std::size_t n = 0;
  };
  std::map<std::pair<std::string, std::string>, Stats> groups;
  for (const Digest& d : s.digests)
    for (const auto& [tool, f1] : d.tool_f1) {
      Stats& g = groups[{d.profile, tool}];
      g.sum += f1;
      g.sum_sq += f1 * f1;
      ++g.n;
    }

  struct Outlier {
    const Digest* d;
    std::string tool;
    double f1, mean, sigma;
  };
  std::vector<Outlier> outliers;
  for (const Digest& d : s.digests)
    for (const auto& [tool, f1] : d.tool_f1) {
      const Stats& g = groups[{d.profile, tool}];
      if (g.n < 2) continue;
      const double mean = g.sum / static_cast<double>(g.n);
      const double var =
          std::max(0.0, g.sum_sq / static_cast<double>(g.n) - mean * mean);
      const double sigma = std::sqrt(var);
      // Degenerate groups (all-identical F1) would flag any epsilon of
      // float noise; require a meaningful spread.
      if (sigma < 1e-9) continue;
      if (std::abs(f1 - mean) > 2.0 * sigma)
        outliers.push_back({&d, tool, f1, mean, sigma});
    }

  std::fprintf(s.file, "{\"type\":\"summary\",\"binaries\":%zu,\"slowest\":[",
               s.digests.size());
  for (std::size_t i = 0; i < by_cost.size(); ++i)
    std::fprintf(s.file, "%s{\"binary\":\"%s\",\"seconds\":%.6f}",
                 i == 0 ? "" : ",", json_escape(by_cost[i]->binary).c_str(),
                 by_cost[i]->total_seconds);
  std::fprintf(s.file, "],\"f1_outliers\":[");
  for (std::size_t i = 0; i < outliers.size(); ++i) {
    const Outlier& o = outliers[i];
    std::fprintf(s.file,
                 "%s{\"binary\":\"%s\",\"tool\":\"%s\",\"f1\":%.6f,"
                 "\"profile_mean\":%.6f,\"profile_sigma\":%.6f}",
                 i == 0 ? "" : ",", json_escape(o.d->binary).c_str(),
                 json_escape(o.tool).c_str(), o.f1, o.mean, o.sigma);
  }
  std::fprintf(s.file, "]}\n");
  close_file(s);
  s.finalized = true;
  s.last_outliers = outliers.size();
}

std::size_t RunReport::last_outlier_count() const {
  ReportState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.last_outliers;
}

}  // namespace fsr::obs
