#include "eh/lsda.hpp"

#include "eh/encodings.hpp"
#include "util/bytes.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/leb128.hpp"

namespace fsr::eh {

std::vector<std::uint64_t> Lsda::landing_pads() const {
  std::vector<std::uint64_t> out;
  for (const auto& cs : call_sites)
    if (cs.landing_pad != 0) out.push_back(cs.landing_pad);
  return out;
}

std::vector<std::uint8_t> build_lsda(const Lsda& lsda) {
  util::ByteWriter w;
  w.u8(kPeOmit);      // LPStart encoding: omitted -> LPStart = func_start
  w.u8(kPeOmit);      // TType encoding: omitted (no type table)
  w.u8(kPeUleb128);   // call-site table encoding

  util::ByteWriter body;
  for (const auto& cs : lsda.call_sites) {
    if (cs.start < lsda.func_start)
      throw EncodeError("call site starts before its function");
    if (cs.landing_pad != 0 && cs.landing_pad < lsda.func_start)
      throw EncodeError("landing pad precedes its function");
    util::write_uleb128(body, cs.start - lsda.func_start);
    util::write_uleb128(body, cs.length);
    util::write_uleb128(body, cs.landing_pad == 0 ? 0 : cs.landing_pad - lsda.func_start);
    util::write_uleb128(body, cs.action);
  }

  util::write_uleb128(w, body.size());
  w.bytes(body.data());
  return w.take();
}

Lsda parse_lsda(std::span<const std::uint8_t> section, std::size_t offset,
                std::uint64_t func_start, std::size_t& end_offset,
                util::Diagnostics* diags) {
  util::ByteReader r(section, offset);
  Lsda out;
  out.func_start = func_start;
  end_offset = offset;

  // Strict mode throws at the first malformed structure; lenient mode
  // (diags != nullptr) records a Diagnostic and returns the call sites
  // decoded before the damage.
  try {
    const std::uint8_t lpstart_enc = r.u8();
    std::uint64_t lp_base = func_start;
    if (lpstart_enc != kPeOmit)
      lp_base = read_encoded(r, lpstart_enc, /*field_addr=*/0, /*ptr_size=*/8);

    const std::uint8_t ttype_enc = r.u8();
    if (ttype_enc != kPeOmit)
      util::read_uleb128(r);  // ttype base offset (table itself not decoded)

    const std::uint8_t cs_enc = r.u8();
    if ((cs_enc & 0x0f) != kPeUleb128)
      throw ParseError(util::Diagnostic{util::DiagCode::kBadLsda,
                                        ".gcc_except_table", r.pos() - 1,
                                        "unsupported LSDA call-site encoding"});

    const std::uint64_t table_len = util::read_uleb128(r);
    // Overflow-safe: `r.pos() + table_len > size` wraps for crafted
    // LEB128 lengths and would admit a bogus table end.
    if (table_len > section.size() - r.pos())
      throw ParseError(util::Diagnostic{util::DiagCode::kBadLsda,
                                        ".gcc_except_table", r.pos(),
                                        "LSDA call-site table overruns section"});
    const std::size_t table_end = r.pos() + static_cast<std::size_t>(table_len);

    while (r.pos() < table_end) {
      if (util::deadline_expired()) {
        if (diags == nullptr) throw TimeoutError("LSDA parse exceeded deadline");
        diags->add(util::DiagCode::kTimeout, ".gcc_except_table", r.pos(),
                   "parse exceeded deadline; call-site table is partial");
        end_offset = r.pos();
        return out;
      }
      CallSite cs;
      cs.start = func_start + util::read_uleb128(r);
      cs.length = util::read_uleb128(r);
      const std::uint64_t lp = util::read_uleb128(r);
      cs.landing_pad = lp == 0 ? 0 : lp_base + lp;
      cs.action = util::read_uleb128(r);
      if (r.pos() > table_end)
        throw ParseError(util::Diagnostic{util::DiagCode::kBadLsda,
                                          ".gcc_except_table", r.pos(),
                                          "LSDA call-site table misaligned"});
      out.call_sites.push_back(cs);
    }
  } catch (const ParseError& e) {
    if (diags == nullptr) throw;
    util::Diagnostic d = e.diagnostic();
    if (d.section.empty()) {
      d.section = ".gcc_except_table";
      d.offset = r.pos();
    }
    if (d.code == util::DiagCode::kGeneric) d.code = util::DiagCode::kBadLsda;
    diags->add(std::move(d));
  }

  end_offset = r.pos();
  return out;
}

}  // namespace fsr::eh
