// .eh_frame_hdr — the binary-search companion of .eh_frame.
//
// Real binaries carry this GNU_EH_FRAME header so the unwinder can find
// the FDE for a PC in O(log n); binary-analysis tools (Ghidra, FETCH)
// read it as a pre-sorted function index. The corpus generator emits
// it, and the Ghidra-like baseline prefers it over a full .eh_frame
// walk when present — mirroring the real tools' fast path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/diagnostic.hpp"

namespace fsr::eh {

/// One search-table row: function start -> its FDE.
struct EhFrameHdrEntry {
  std::uint64_t pc_begin = 0;
  std::uint64_t fde_addr = 0;
};

struct EhFrameHdr {
  std::uint64_t eh_frame_addr = 0;       // pointer to the .eh_frame section
  std::vector<EhFrameHdrEntry> entries;  // sorted by pc_begin
};

/// Serialize a header (version 1, pcrel|sdata4 frame pointer,
/// udata4 count, datarel|sdata4 table) to be placed at `hdr_addr`.
/// Entries are sorted by pc_begin as the format requires.
std::vector<std::uint8_t> build_eh_frame_hdr(const EhFrameHdr& hdr,
                                             std::uint64_t hdr_addr);

/// Parse a header located at `hdr_addr`.
///
/// Strict mode (`diags == nullptr`, the default) throws fsr::ParseError
/// on malformed input or unsupported encodings. Lenient mode records a
/// structured Diagnostic and salvages: entries decoded before a
/// truncation are kept, and an unsorted table is sorted rather than
/// rejected (consumers binary-search it).
EhFrameHdr parse_eh_frame_hdr(std::span<const std::uint8_t> data,
                              std::uint64_t hdr_addr,
                              util::Diagnostics* diags = nullptr);

}  // namespace fsr::eh
