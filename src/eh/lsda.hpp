// Language-Specific Data Area codec (.gcc_except_table).
//
// Each C++ function with exception-handling code owns one LSDA holding
// a call-site table; entries with a nonzero landing pad mark the start
// of a catch/cleanup block. In CET-enabled binaries, every landing pad
// begins with an end-branch instruction (the unwinder reaches it via an
// indirect jump), which is exactly the false-positive source FunSeeker's
// FILTERENDBR removes (paper §III-B3, §IV-C).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/diagnostic.hpp"

namespace fsr::eh {

/// One call-site table row, with addresses already made absolute.
struct CallSite {
  std::uint64_t start = 0;        // first address covered
  std::uint64_t length = 0;       // bytes covered
  std::uint64_t landing_pad = 0;  // absolute landing-pad address; 0 = none
  std::uint64_t action = 0;       // action-table cookie (opaque here)
};

struct Lsda {
  /// Function start; call-site offsets are encoded relative to it.
  std::uint64_t func_start = 0;
  std::vector<CallSite> call_sites;

  /// Absolute addresses of all landing pads (nonzero entries).
  [[nodiscard]] std::vector<std::uint64_t> landing_pads() const;
};

/// Serialize one LSDA (GCC layout: LPStart omitted = function start,
/// TType omitted, ULEB128 call-site encoding).
std::vector<std::uint8_t> build_lsda(const Lsda& lsda);

/// Parse one LSDA starting at `offset` within the section. `func_start`
/// is the owning function's entry (from the FDE); it anchors the
/// relative call-site offsets. Returns the decoded LSDA; `end_offset`
/// receives the offset one past the parsed bytes.
///
/// Strict mode (`diags == nullptr`) throws fsr::ParseError on a
/// malformed table. Lenient mode records a Diagnostic and returns the
/// call sites decoded before the first malformed row.
Lsda parse_lsda(std::span<const std::uint8_t> section, std::size_t offset,
                std::uint64_t func_start, std::size_t& end_offset,
                util::Diagnostics* diags = nullptr);

}  // namespace fsr::eh
