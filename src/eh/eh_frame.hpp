// .eh_frame reader and writer (CIE/FDE records).
//
// The corpus generator emits one CIE per binary plus one FDE per
// function that has call-frame information; the compiler profiles decide
// who gets an FDE (notably, Clang omits FDEs for 32-bit C code, the
// behaviour behind FETCH's recall collapse on x86 — paper §V-C).
//
// The FETCH-like and Ghidra-like baselines consume pc_begin values;
// FunSeeker consumes only the LSDA pointers (to locate landing pads).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/diagnostic.hpp"

namespace fsr::eh {

/// One Frame Description Entry, decoded to absolute addresses.
struct Fde {
  std::uint64_t pc_begin = 0;
  std::uint64_t pc_range = 0;
  /// Absolute address of the function's LSDA inside
  /// .gcc_except_table, when the CIE carries an 'L' augmentation and
  /// the FDE has a language-specific data area.
  std::optional<std::uint64_t> lsda;

  [[nodiscard]] std::uint64_t pc_end() const { return pc_begin + pc_range; }
};

struct EhFrame {
  std::vector<Fde> fdes;
};

/// Parse a .eh_frame section located at `section_addr`.
///
/// Strict mode (`diags == nullptr`, the default) throws fsr::ParseError
/// on structural corruption. Passing a diagnostics sink switches to
/// lenient mode: every record decoded before the first malformed one is
/// kept, the failure is recorded as a structured Diagnostic, and the
/// salvage is returned — EH metadata in the wild is frequently partial,
/// and a broken tail must not discard the valid prefix.
EhFrame parse_eh_frame(std::span<const std::uint8_t> data, std::uint64_t section_addr,
                       int ptr_size, util::Diagnostics* diags = nullptr);

/// Serialize FDE descriptions into .eh_frame bytes. The section will be
/// placed at `section_addr` (needed because pointers are PC-relative).
/// Entries with an lsda produce an 'L' augmentation CIE ("zLR"); others
/// share a plain "zR" CIE. When `fde_addrs_out` is non-null it receives
/// the virtual address of each emitted FDE record, in input order (for
/// building the .eh_frame_hdr search table).
std::vector<std::uint8_t> build_eh_frame(const std::vector<Fde>& fdes,
                                         std::uint64_t section_addr, int ptr_size,
                                         std::vector<std::uint64_t>* fde_addrs_out = nullptr);

}  // namespace fsr::eh
