#include "eh/eh_frame_hdr.hpp"

#include <algorithm>

#include "eh/encodings.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fsr::eh {

namespace {

constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFramePtrEnc = kPePcrel | kPeSdata4;
constexpr std::uint8_t kCountEnc = kPeUdata4;
constexpr std::uint8_t kTableEnc = kPeDatarel | kPeSdata4;

}  // namespace

std::vector<std::uint8_t> build_eh_frame_hdr(const EhFrameHdr& hdr,
                                             std::uint64_t hdr_addr) {
  std::vector<EhFrameHdrEntry> sorted = hdr.entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const EhFrameHdrEntry& a, const EhFrameHdrEntry& b) {
              return a.pc_begin < b.pc_begin;
            });

  util::ByteWriter w;
  w.u8(kVersion);
  w.u8(kFramePtrEnc);
  w.u8(kCountEnc);
  w.u8(kTableEnc);
  // eh_frame pointer, pcrel to this field.
  write_encoded(w, kFramePtrEnc, hdr.eh_frame_addr, hdr_addr + w.size(), 8);
  w.u32(static_cast<std::uint32_t>(sorted.size()));
  for (const auto& e : sorted) {
    // datarel = relative to the start of .eh_frame_hdr.
    w.i32(static_cast<std::int32_t>(static_cast<std::int64_t>(e.pc_begin) -
                                    static_cast<std::int64_t>(hdr_addr)));
    w.i32(static_cast<std::int32_t>(static_cast<std::int64_t>(e.fde_addr) -
                                    static_cast<std::int64_t>(hdr_addr)));
  }
  return w.take();
}

EhFrameHdr parse_eh_frame_hdr(std::span<const std::uint8_t> data,
                              std::uint64_t hdr_addr) {
  util::ByteReader r(data);
  const std::uint8_t version = r.u8();
  if (version != kVersion)
    throw ParseError(".eh_frame_hdr version " + std::to_string(version));
  const std::uint8_t frame_enc = r.u8();
  const std::uint8_t count_enc = r.u8();
  const std::uint8_t table_enc = r.u8();
  if (frame_enc != kFramePtrEnc || count_enc != kCountEnc || table_enc != kTableEnc)
    throw ParseError("unsupported .eh_frame_hdr encodings");

  EhFrameHdr hdr;
  hdr.eh_frame_addr = read_encoded(r, frame_enc, hdr_addr + r.pos(), 8);
  const std::uint32_t count = r.u32();
  hdr.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    EhFrameHdrEntry e;
    e.pc_begin = hdr_addr + static_cast<std::uint64_t>(static_cast<std::int64_t>(r.i32()));
    e.fde_addr = hdr_addr + static_cast<std::uint64_t>(static_cast<std::int64_t>(r.i32()));
    hdr.entries.push_back(e);
  }
  if (!std::is_sorted(hdr.entries.begin(), hdr.entries.end(),
                      [](const EhFrameHdrEntry& a, const EhFrameHdrEntry& b) {
                        return a.pc_begin < b.pc_begin;
                      }))
    throw ParseError(".eh_frame_hdr table is not sorted");
  return hdr;
}

}  // namespace fsr::eh
