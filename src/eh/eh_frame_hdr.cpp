#include "eh/eh_frame_hdr.hpp"

#include <algorithm>

#include "eh/encodings.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fsr::eh {

namespace {

constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFramePtrEnc = kPePcrel | kPeSdata4;
constexpr std::uint8_t kCountEnc = kPeUdata4;
constexpr std::uint8_t kTableEnc = kPeDatarel | kPeSdata4;

}  // namespace

std::vector<std::uint8_t> build_eh_frame_hdr(const EhFrameHdr& hdr,
                                             std::uint64_t hdr_addr) {
  std::vector<EhFrameHdrEntry> sorted = hdr.entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const EhFrameHdrEntry& a, const EhFrameHdrEntry& b) {
              return a.pc_begin < b.pc_begin;
            });

  util::ByteWriter w;
  w.u8(kVersion);
  w.u8(kFramePtrEnc);
  w.u8(kCountEnc);
  w.u8(kTableEnc);
  // eh_frame pointer, pcrel to this field.
  write_encoded(w, kFramePtrEnc, hdr.eh_frame_addr, hdr_addr + w.size(), 8);
  w.u32(static_cast<std::uint32_t>(sorted.size()));
  for (const auto& e : sorted) {
    // datarel = relative to the start of .eh_frame_hdr.
    w.i32(static_cast<std::int32_t>(static_cast<std::int64_t>(e.pc_begin) -
                                    static_cast<std::int64_t>(hdr_addr)));
    w.i32(static_cast<std::int32_t>(static_cast<std::int64_t>(e.fde_addr) -
                                    static_cast<std::int64_t>(hdr_addr)));
  }
  return w.take();
}

EhFrameHdr parse_eh_frame_hdr(std::span<const std::uint8_t> data,
                              std::uint64_t hdr_addr,
                              util::Diagnostics* diags) {
  util::ByteReader r(data);
  EhFrameHdr hdr;
  const auto sorted_by_pc = [](const EhFrameHdrEntry& a, const EhFrameHdrEntry& b) {
    return a.pc_begin < b.pc_begin;
  };

  // Strict mode throws at the first malformed field; lenient mode
  // (diags != nullptr) records a Diagnostic and salvages what decoded.
  try {
    const std::uint8_t version = r.u8();
    if (version != kVersion)
      throw ParseError(util::Diagnostic{util::DiagCode::kBadEhFrameHdr,
                                        ".eh_frame_hdr", 0,
                                        ".eh_frame_hdr version " + std::to_string(version)});
    const std::uint8_t frame_enc = r.u8();
    const std::uint8_t count_enc = r.u8();
    const std::uint8_t table_enc = r.u8();
    if (frame_enc != kFramePtrEnc || count_enc != kCountEnc || table_enc != kTableEnc)
      throw ParseError(util::Diagnostic{util::DiagCode::kBadEncoding,
                                        ".eh_frame_hdr", 1,
                                        "unsupported .eh_frame_hdr encodings"});

    hdr.eh_frame_addr = read_encoded(r, frame_enc, hdr_addr + r.pos(), 8);
    const std::uint32_t count = r.u32();
    // A crafted count can claim billions of rows; never reserve more
    // than the section can physically hold (8 bytes per entry).
    const std::uint64_t max_entries = (data.size() - r.pos()) / 8;
    if (count > max_entries)
      throw ParseError(util::Diagnostic{util::DiagCode::kBadEhFrameHdr,
                                        ".eh_frame_hdr", r.pos() - 4,
                                        ".eh_frame_hdr table overruns section"});
    hdr.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      EhFrameHdrEntry e;
      e.pc_begin = hdr_addr + static_cast<std::uint64_t>(static_cast<std::int64_t>(r.i32()));
      e.fde_addr = hdr_addr + static_cast<std::uint64_t>(static_cast<std::int64_t>(r.i32()));
      hdr.entries.push_back(e);
    }
    if (!std::is_sorted(hdr.entries.begin(), hdr.entries.end(), sorted_by_pc)) {
      if (diags == nullptr)
        throw ParseError(util::Diagnostic{util::DiagCode::kBadEhFrameHdr,
                                          ".eh_frame_hdr", 0,
                                          ".eh_frame_hdr table is not sorted"});
      // Consumers binary-search the table; sorting the salvage keeps it
      // usable.
      diags->add(util::DiagCode::kBadEhFrameHdr, ".eh_frame_hdr", 0,
                 ".eh_frame_hdr table is not sorted; sorted the salvage");
      std::sort(hdr.entries.begin(), hdr.entries.end(), sorted_by_pc);
    }
  } catch (const ParseError& e) {
    if (diags == nullptr) throw;
    util::Diagnostic d = e.diagnostic();
    if (d.section.empty()) {  // e.g. a ByteReader truncation
      d.section = ".eh_frame_hdr";
      d.offset = r.pos();
    }
    if (d.code == util::DiagCode::kGeneric) d.code = util::DiagCode::kBadEhFrameHdr;
    diags->add(std::move(d));
    std::sort(hdr.entries.begin(), hdr.entries.end(), sorted_by_pc);
  }
  return hdr;
}

}  // namespace fsr::eh
