#include "eh/encodings.hpp"

#include "util/error.hpp"
#include "util/leb128.hpp"

namespace fsr::eh {

std::uint64_t read_encoded(util::ByteReader& r, std::uint8_t encoding,
                           std::uint64_t field_addr, int ptr_size) {
  if (encoding == kPeOmit) throw ParseError("read_encoded called with DW_EH_PE_omit");
  if ((encoding & kPeIndirect) != 0)
    throw ParseError("indirect DW_EH_PE encodings are not supported");

  std::uint64_t raw;
  switch (encoding & 0x0f) {
    case kPeAbsptr:
      raw = ptr_size == 8 ? r.u64() : r.u32();
      break;
    case kPeUleb128:
      raw = util::read_uleb128(r);
      break;
    case kPeUdata2:
      raw = r.u16();
      break;
    case kPeUdata4:
      raw = r.u32();
      break;
    case kPeUdata8:
      raw = r.u64();
      break;
    case kPeSleb128:
      raw = static_cast<std::uint64_t>(util::read_sleb128(r));
      break;
    case kPeSdata2:
      raw = static_cast<std::uint64_t>(static_cast<std::int64_t>(r.i16()));
      break;
    case kPeSdata4:
      raw = static_cast<std::uint64_t>(static_cast<std::int64_t>(r.i32()));
      break;
    case kPeSdata8:
      raw = static_cast<std::uint64_t>(r.i64());
      break;
    default:
      throw ParseError("unsupported DW_EH_PE value format");
  }

  switch (encoding & 0x70) {
    case 0x00:  // absolute
      return raw;
    case kPePcrel:
      return field_addr + raw;
    default:
      throw ParseError("unsupported DW_EH_PE application");
  }
}

void write_encoded(util::ByteWriter& w, std::uint8_t encoding, std::uint64_t value,
                   std::uint64_t field_addr, int ptr_size) {
  if (encoding == kPeOmit) throw EncodeError("write_encoded called with DW_EH_PE_omit");
  std::uint64_t raw = value;
  switch (encoding & 0x70) {
    case 0x00:
      break;
    case kPePcrel:
      raw = value - field_addr;
      break;
    default:
      throw EncodeError("unsupported DW_EH_PE application for writing");
  }

  switch (encoding & 0x0f) {
    case kPeAbsptr:
      if (ptr_size == 8)
        w.u64(raw);
      else
        w.u32(static_cast<std::uint32_t>(raw));
      break;
    case kPeUleb128:
      util::write_uleb128(w, raw);
      break;
    case kPeSleb128:
      util::write_sleb128(w, static_cast<std::int64_t>(raw));
      break;
    case kPeUdata2:
    case kPeSdata2:
      w.u16(static_cast<std::uint16_t>(raw));
      break;
    case kPeUdata4:
    case kPeSdata4:
      w.u32(static_cast<std::uint32_t>(raw));
      break;
    case kPeUdata8:
    case kPeSdata8:
      w.u64(raw);
      break;
    default:
      throw EncodeError("unsupported DW_EH_PE value format for writing");
  }
}

std::size_t encoded_size(std::uint8_t encoding, int ptr_size) {
  switch (encoding & 0x0f) {
    case kPeAbsptr:
      return static_cast<std::size_t>(ptr_size);
    case kPeUdata2:
    case kPeSdata2:
      return 2;
    case kPeUdata4:
    case kPeSdata4:
      return 4;
    case kPeUdata8:
    case kPeSdata8:
      return 8;
    default:
      throw UsageError("encoded_size on variable-length encoding");
  }
}

}  // namespace fsr::eh
