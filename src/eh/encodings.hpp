// DWARF exception-handling pointer encodings (DW_EH_PE_*).
//
// Used by .eh_frame CIEs/FDEs and by .gcc_except_table LSDAs to encode
// addresses compactly and position-independently.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace fsr::eh {

// Value format (low nibble).
inline constexpr std::uint8_t kPeAbsptr = 0x00;
inline constexpr std::uint8_t kPeUleb128 = 0x01;
inline constexpr std::uint8_t kPeUdata2 = 0x02;
inline constexpr std::uint8_t kPeUdata4 = 0x03;
inline constexpr std::uint8_t kPeUdata8 = 0x04;
inline constexpr std::uint8_t kPeSleb128 = 0x09;
inline constexpr std::uint8_t kPeSdata2 = 0x0a;
inline constexpr std::uint8_t kPeSdata4 = 0x0b;
inline constexpr std::uint8_t kPeSdata8 = 0x0c;

// Application (high nibble).
inline constexpr std::uint8_t kPePcrel = 0x10;
inline constexpr std::uint8_t kPeDatarel = 0x30;
inline constexpr std::uint8_t kPeFuncrel = 0x40;
inline constexpr std::uint8_t kPeIndirect = 0x80;

// Special: field is absent entirely.
inline constexpr std::uint8_t kPeOmit = 0xff;

/// Decode one encoded pointer.
///   r          positioned at the encoded field
///   encoding   DW_EH_PE_* byte
///   field_addr virtual address of the field itself (for pcrel)
///   ptr_size   4 or 8 (for absptr)
/// Returns the absolute value. Throws fsr::ParseError on unsupported
/// encodings (indirect, datarel without base, ...).
std::uint64_t read_encoded(util::ByteReader& r, std::uint8_t encoding,
                           std::uint64_t field_addr, int ptr_size);

/// Encode one pointer; `field_addr` is the virtual address the field
/// will occupy once the section is placed (needed for pcrel).
void write_encoded(util::ByteWriter& w, std::uint8_t encoding, std::uint64_t value,
                   std::uint64_t field_addr, int ptr_size);

/// Byte width of a fixed-size encoding; throws for LEB encodings.
std::size_t encoded_size(std::uint8_t encoding, int ptr_size);

}  // namespace fsr::eh
