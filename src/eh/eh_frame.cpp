#include "eh/eh_frame.hpp"

#include <map>
#include <string>

#include "eh/encodings.hpp"
#include "util/bytes.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/leb128.hpp"

namespace fsr::eh {

namespace {

using util::ByteReader;
using util::ByteWriter;

struct CieInfo {
  std::uint8_t fde_encoding = kPeAbsptr;
  std::uint8_t lsda_encoding = kPeOmit;
  bool has_aug_data = false;  // 'z'
};

CieInfo parse_cie(ByteReader& r, std::uint64_t record_end, int ptr_size) {
  CieInfo info;
  const std::uint8_t version = r.u8();
  if (version != 1 && version != 3)
    throw ParseError("unsupported CIE version " + std::to_string(version));
  const std::string aug = r.cstring();
  util::read_uleb128(r);  // code alignment factor
  util::read_sleb128(r);  // data alignment factor
  if (version == 1)
    r.u8();  // return address register (u8 in v1)
  else
    util::read_uleb128(r);

  std::size_t i = 0;
  if (i < aug.size() && aug[i] == 'z') {
    info.has_aug_data = true;
    util::read_uleb128(r);  // augmentation data length
    ++i;
  }
  for (; i < aug.size(); ++i) {
    switch (aug[i]) {
      case 'L':
        info.lsda_encoding = r.u8();
        break;
      case 'R':
        info.fde_encoding = r.u8();
        break;
      case 'P': {
        const std::uint8_t enc = r.u8();
        // Skip the personality routine pointer.
        if ((enc & 0x0f) == kPeUleb128 || (enc & 0x0f) == kPeSleb128)
          util::read_uleb128(r);
        else
          r.skip(encoded_size(enc, ptr_size));
        break;
      }
      case 'S':  // signal frame
        break;
      default:
        throw ParseError(std::string("unsupported CIE augmentation '") + aug[i] + "'");
    }
  }
  // Remaining bytes are CFI instructions / padding — skip to record end.
  (void)record_end;
  return info;
}

}  // namespace

EhFrame parse_eh_frame(std::span<const std::uint8_t> data, std::uint64_t section_addr,
                       int ptr_size, util::Diagnostics* diags) {
  EhFrame out;
  ByteReader r(data);
  std::map<std::uint64_t, CieInfo> cies;  // keyed by section offset of the CIE

  // Strict mode throws at the first malformed record; lenient mode
  // (diags != nullptr) records a Diagnostic and keeps every FDE decoded
  // before the damage.
  while (!r.eof()) {
    const std::uint64_t record_off = r.pos();
    try {
      if (util::deadline_expired()) {
        if (diags == nullptr) throw TimeoutError(".eh_frame parse exceeded deadline");
        diags->add(util::DiagCode::kTimeout, ".eh_frame", record_off,
                   "parse exceeded deadline; FDE list is partial");
        break;
      }
      std::uint64_t length = r.u32();
      if (length == 0) break;  // terminator
      if (length == 0xffffffffULL) length = r.u64();
      const std::uint64_t body_start = r.pos();
      // Overflow-safe: `body_start + length > size` wraps for crafted
      // 64-bit lengths and would admit a bogus record end.
      if (length > data.size() - body_start)
        throw ParseError(util::Diagnostic{util::DiagCode::kBadFde, ".eh_frame",
                                          record_off,
                                          ".eh_frame record overruns section"});
      const std::uint64_t record_end = body_start + length;

      const std::uint64_t id_field_off = r.pos();
      const std::uint32_t cie_id = r.u32();
      if (cie_id == 0) {
        cies[record_off] = parse_cie(r, record_end, ptr_size);
      } else {
        // FDE: cie_id is the distance from this field back to its CIE.
        const std::uint64_t cie_off = id_field_off - cie_id;
        auto it = cies.find(cie_off);
        if (it == cies.end())
          throw ParseError(util::Diagnostic{util::DiagCode::kBadFde, ".eh_frame",
                                            record_off,
                                            "FDE references unknown CIE"});
        const CieInfo& cie = it->second;

        Fde fde;
        const std::uint64_t pc_field_addr = section_addr + r.pos();
        fde.pc_begin = read_encoded(r, cie.fde_encoding, pc_field_addr, ptr_size);
        // pc_range uses the value format of the FDE encoding but is
        // always an absolute length.
        const std::uint64_t range_field_addr = section_addr + r.pos();
        fde.pc_range = read_encoded(r, cie.fde_encoding & 0x0f, range_field_addr, ptr_size);
        if (cie.has_aug_data) {
          const std::uint64_t aug_len = util::read_uleb128(r);
          if (aug_len > data.size() - r.pos())
            throw ParseError(util::Diagnostic{util::DiagCode::kBadFde, ".eh_frame",
                                              r.pos(),
                                              "FDE augmentation overruns section"});
          const std::uint64_t aug_end = r.pos() + aug_len;
          if (cie.lsda_encoding != kPeOmit && aug_len > 0) {
            const std::uint64_t lsda_field_addr = section_addr + r.pos();
            const std::uint64_t lsda = read_encoded(r, cie.lsda_encoding, lsda_field_addr, ptr_size);
            if (lsda != 0) fde.lsda = lsda;
          }
          r.seek(aug_end);
        }
        out.fdes.push_back(fde);
      }
      r.seek(record_end);
    } catch (const ParseError& e) {
      if (diags == nullptr) throw;
      util::Diagnostic d = e.diagnostic();
      if (d.section.empty()) {  // e.g. a ByteReader truncation
        d.section = ".eh_frame";
        d.offset = record_off;
      }
      if (d.code == util::DiagCode::kGeneric) d.code = util::DiagCode::kBadFde;
      diags->add(std::move(d));
      break;  // salvage: everything before this record stands
    } catch (const Error& e) {
      // Hostile input can also surface as UsageError (e.g. a CIE 'P'
      // augmentation naming a variable-length encoding) — contain it.
      if (diags == nullptr) throw;
      diags->add(util::DiagCode::kBadCie, ".eh_frame", record_off, e.what());
      break;
    }
  }
  return out;
}

std::vector<std::uint8_t> build_eh_frame(const std::vector<Fde>& fdes,
                                         std::uint64_t section_addr, int ptr_size,
                                         std::vector<std::uint64_t>* fde_addrs_out) {
  ByteWriter w;

  // Two CIE flavours: "zR" for plain frames, "zLR" when an LSDA pointer
  // is present. Emit lazily, remembering section offsets.
  std::int64_t cie_plain_off = -1;
  std::int64_t cie_lsda_off = -1;
  const std::uint8_t fde_enc = kPePcrel | kPeSdata4;
  const std::uint8_t lsda_enc = kPePcrel | kPeSdata4;

  auto emit_cie = [&](bool with_lsda) -> std::uint64_t {
    const std::uint64_t off = w.size();
    const std::size_t len_at = w.size();
    w.u32(0);  // patched below
    w.u32(0);  // CIE id
    w.u8(1);   // version
    w.cstring(with_lsda ? "zLR" : "zR");
    util::write_uleb128(w, 1);   // code alignment
    util::write_sleb128(w, ptr_size == 8 ? -8 : -4);  // data alignment
    w.u8(ptr_size == 8 ? 16 : 8);  // return address register (RA)
    util::write_uleb128(w, with_lsda ? 2 : 1);  // aug data length
    if (with_lsda) w.u8(lsda_enc);
    w.u8(fde_enc);
    // Initial CFI: DW_CFA_def_cfa (sp, word) — enough for structure.
    w.u8(0x0c);
    util::write_uleb128(w, ptr_size == 8 ? 7 : 4);
    util::write_uleb128(w, static_cast<std::uint64_t>(ptr_size));
    w.align(static_cast<std::size_t>(ptr_size));
    w.patch_u32(len_at, static_cast<std::uint32_t>(w.size() - len_at - 4));
    return off;
  };

  for (const auto& fde : fdes) {
    const bool with_lsda = fde.lsda.has_value();
    std::int64_t& cie_off = with_lsda ? cie_lsda_off : cie_plain_off;
    if (cie_off < 0) cie_off = static_cast<std::int64_t>(emit_cie(with_lsda));

    if (fde_addrs_out != nullptr) fde_addrs_out->push_back(section_addr + w.size());
    const std::size_t len_at = w.size();
    w.u32(0);  // patched below
    const std::uint64_t id_field_off = w.size();
    w.u32(static_cast<std::uint32_t>(id_field_off - static_cast<std::uint64_t>(cie_off)));
    write_encoded(w, fde_enc, fde.pc_begin, section_addr + w.size(), ptr_size);
    w.u32(static_cast<std::uint32_t>(fde.pc_range));  // sdata4 value format
    if (with_lsda) {
      util::write_uleb128(w, 4);  // aug data length (one sdata4 pointer)
      write_encoded(w, lsda_enc, *fde.lsda, section_addr + w.size(), ptr_size);
    } else {
      util::write_uleb128(w, 0);
    }
    w.align(static_cast<std::size_t>(ptr_size));
    w.patch_u32(len_at, static_cast<std::uint32_t>(w.size() - len_at - 4));
  }

  w.u32(0);  // terminator
  return w.take();
}

}  // namespace fsr::eh
