// Intra-procedural CFG recovery on top of identified function entries.
//
// The paper motivates function identification as "the cornerstone of
// binary analysis ... CFG recovery techniques often rely on the
// assumption that function entries are known" (§VII-B). This module is
// that downstream consumer: given a binary and a set of entries (from
// FunSeeker or anything else), it derives per-function extents and
// basic-block graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "elf/image.hpp"
#include "x86/insn.hpp"

namespace fsr::cfg {

/// Half-open address range of straight-line code with a single entry
/// and a single terminator.
struct BasicBlock {
  std::uint64_t start = 0;
  std::uint64_t end = 0;  // exclusive
  /// Intra-procedural successor block starts (fallthrough + branch).
  std::vector<std::uint64_t> successors;
  /// Direct call targets made from this block (inter-procedural edges).
  std::vector<std::uint64_t> calls;
  /// Direct jump leaving the function (tail call target), 0 if none.
  std::uint64_t tail_call = 0;
  /// Block ends in ret / hlt / ud2 (function exit).
  bool returns = false;
  std::size_t insn_count = 0;
};

struct FunctionCfg {
  std::uint64_t entry = 0;
  /// Exclusive end of the function's code, with trailing alignment
  /// padding (nop / int3 ladders) trimmed off.
  std::uint64_t end = 0;
  /// Blocks sorted by start address; blocks[0].start == entry.
  std::vector<BasicBlock> blocks;

  [[nodiscard]] const BasicBlock* block_at(std::uint64_t addr) const;
  [[nodiscard]] std::size_t instruction_count() const;
};

struct ProgramCfg {
  std::vector<FunctionCfg> functions;  // sorted by entry

  [[nodiscard]] const FunctionCfg* function_at(std::uint64_t entry) const;
};

/// Build CFGs for the given entries (sorted, deduplicated; typically
/// funseeker::Result::functions). Function extents are approximated by
/// the next entry, as the candidate-region logic of SELECTTAILCALL
/// does, then trimmed at the last reachable instruction.
ProgramCfg build_cfg(const elf::Image& bin, const std::vector<std::uint64_t>& entries);

}  // namespace fsr::cfg
