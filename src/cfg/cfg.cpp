#include "cfg/cfg.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "funseeker/disassemble.hpp"

namespace fsr::cfg {

namespace {

/// Build one function's CFG from its slice of the instruction stream.
FunctionCfg build_function(const std::vector<x86::Insn>& insns, std::size_t first,
                           std::size_t last, std::uint64_t entry,
                           std::uint64_t region_end) {
  FunctionCfg fn;
  fn.entry = entry;

  // Trim trailing alignment padding: walk back over nop/int3 runs.
  std::size_t trimmed_last = last;
  while (trimmed_last > first) {
    const x86::Kind k = insns[trimmed_last - 1].kind;
    if (k == x86::Kind::kNop || k == x86::Kind::kInt3)
      --trimmed_last;
    else
      break;
  }
  if (trimmed_last == first) trimmed_last = last;  // all-padding region: keep as is
  fn.end = insns[trimmed_last - 1].end();

  // Leaders: the entry, every in-range branch target, and every
  // instruction following a control transfer.
  std::set<std::uint64_t> leaders;
  leaders.insert(entry);
  for (std::size_t i = first; i < trimmed_last; ++i) {
    const x86::Insn& insn = insns[i];
    const bool transfers = insn.is_direct_branch() || insn.is_terminator() ||
                           insn.kind == x86::Kind::kCallIndirect;
    if (insn.is_direct_branch() && insn.kind != x86::Kind::kCallDirect &&
        insn.target >= entry && insn.target < fn.end)
      leaders.insert(insn.target);
    if (transfers && insn.kind != x86::Kind::kCallDirect &&
        insn.kind != x86::Kind::kCallIndirect && i + 1 < trimmed_last)
      leaders.insert(insns[i + 1].addr);
  }

  // Carve blocks between leaders.
  for (std::size_t i = first; i < trimmed_last;) {
    BasicBlock bb;
    bb.start = insns[i].addr;
    std::size_t j = i;
    for (; j < trimmed_last; ++j) {
      const x86::Insn& insn = insns[j];
      if (j != i && leaders.count(insn.addr) != 0) break;  // next leader starts
      ++bb.insn_count;
      if (insn.kind == x86::Kind::kCallDirect) bb.calls.push_back(insn.target);
      const bool is_last_of_block =
          insn.is_terminator() || insn.kind == x86::Kind::kJcc ||
          (j + 1 < trimmed_last && leaders.count(insns[j + 1].addr) != 0);
      if (!is_last_of_block) continue;

      bb.end = insn.end();
      if (insn.kind == x86::Kind::kJcc) {
        if (insn.target >= entry && insn.target < fn.end)
          bb.successors.push_back(insn.target);
        if (j + 1 < trimmed_last) bb.successors.push_back(insns[j + 1].addr);
      } else if (insn.kind == x86::Kind::kJmpDirect) {
        if (insn.target >= entry && insn.target < fn.end)
          bb.successors.push_back(insn.target);
        else
          bb.tail_call = insn.target;
      } else if (insn.kind == x86::Kind::kRet || insn.kind == x86::Kind::kHlt ||
                 insn.kind == x86::Kind::kUd2) {
        bb.returns = true;
      } else if (!insn.is_terminator() && j + 1 < trimmed_last) {
        bb.successors.push_back(insns[j + 1].addr);  // plain fallthrough split
      }
      ++j;
      break;
    }
    if (bb.end == 0) bb.end = j < trimmed_last ? insns[j].addr : fn.end;
    fn.blocks.push_back(std::move(bb));
    i = j;
  }

  (void)region_end;
  return fn;
}

}  // namespace

const BasicBlock* FunctionCfg::block_at(std::uint64_t addr) const {
  for (const auto& bb : blocks)
    if (addr >= bb.start && addr < bb.end) return &bb;
  return nullptr;
}

std::size_t FunctionCfg::instruction_count() const {
  std::size_t n = 0;
  for (const auto& bb : blocks) n += bb.insn_count;
  return n;
}

const FunctionCfg* ProgramCfg::function_at(std::uint64_t entry) const {
  auto it = std::lower_bound(functions.begin(), functions.end(), entry,
                             [](const FunctionCfg& f, std::uint64_t e) {
                               return f.entry < e;
                             });
  return it != functions.end() && it->entry == entry ? &*it : nullptr;
}

ProgramCfg build_cfg(const elf::Image& bin, const std::vector<std::uint64_t>& entries) {
  const funseeker::DisasmSets sets = funseeker::disassemble(bin);
  const std::vector<x86::Insn>& insns = sets.insns;

  ProgramCfg prog;
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const std::uint64_t entry = entries[e];
    const std::uint64_t region_end =
        e + 1 < entries.size() ? entries[e + 1] : bin.text().end_addr();
    // Locate the instruction slice [first, last) of this region.
    auto lo = std::lower_bound(insns.begin(), insns.end(), entry,
                               [](const x86::Insn& i, std::uint64_t a) {
                                 return i.addr < a;
                               });
    auto hi = std::lower_bound(lo, insns.end(), region_end,
                               [](const x86::Insn& i, std::uint64_t a) {
                                 return i.addr < a;
                               });
    if (lo == hi || lo->addr != entry) continue;  // entry not at a decoded boundary
    prog.functions.push_back(build_function(
        insns, static_cast<std::size_t>(lo - insns.begin()),
        static_cast<std::size_t>(hi - insns.begin()), entry, region_end));
  }
  return prog;
}

}  // namespace fsr::cfg
