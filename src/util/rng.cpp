#include "util/rng.hpp"

#include <cmath>

namespace fsr::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw UsageError("Rng::range requires lo <= hi");
  const std::uint64_t span = hi - lo;
  if (span == UINT64_MAX) return next();
  // Debiased modulo via rejection sampling.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + v % bound;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted(std::span<const double> weights) {
  if (weights.empty()) throw UsageError("Rng::weighted requires weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw UsageError("Rng::weighted requires nonnegative weights");
    total += w;
  }
  if (total <= 0.0) throw UsageError("Rng::weighted requires a positive total");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t Rng::skewed(std::uint64_t min, std::uint64_t mean, std::uint64_t max) {
  if (min > max) throw UsageError("Rng::skewed requires min <= max");
  if (mean <= min) return min;
  // Exponential with the requested mean offset, clamped into [min, max].
  const double lambda = 1.0 / static_cast<double>(mean - min);
  double u = uniform();
  if (u >= 1.0) u = 0.999999;
  const double x = -std::log(1.0 - u) / lambda;
  std::uint64_t v = min + static_cast<std::uint64_t>(x);
  return v > max ? max : v;
}

Rng Rng::fork() {
  return Rng(next() ^ 0xa0761d6478bd642fULL);
}

}  // namespace fsr::util
