// Single source of truth for the toolchain version string, shared by
// every front end (`fsr --version`, `fsrd --version`, the service
// handshake's `stats` response) so a client can tell which build a
// daemon is running.
#pragma once

namespace fsr::util {

inline constexpr const char* kVersion = "0.8.0";
inline constexpr const char* kProjectName = "funseeker-repro";

}  // namespace fsr::util
