#include "util/diagnostic.hpp"

#include "util/str.hpp"

namespace fsr::util {

const char* to_string(DiagCode code) {
  switch (code) {
    case DiagCode::kGeneric: return "generic";
    case DiagCode::kTruncated: return "truncated";
    case DiagCode::kBadHeader: return "bad-header";
    case DiagCode::kSectionBounds: return "section-bounds";
    case DiagCode::kBadString: return "bad-string";
    case DiagCode::kBadSymbols: return "bad-symbols";
    case DiagCode::kBadPlt: return "bad-plt";
    case DiagCode::kBadCie: return "bad-cie";
    case DiagCode::kBadFde: return "bad-fde";
    case DiagCode::kBadLsda: return "bad-lsda";
    case DiagCode::kBadEncoding: return "bad-encoding";
    case DiagCode::kBadNote: return "bad-note";
    case DiagCode::kBadEhFrameHdr: return "bad-eh-frame-hdr";
    case DiagCode::kTimeout: return "timeout";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string out = "[";
  out += util::to_string(code);
  out += "] ";
  out += section.empty() ? "file" : section;
  out += "+";
  out += hex(offset);
  out += ": ";
  out += message;
  return out;
}

void Diagnostics::add(Diagnostic d) {
  ++total_;
  if (items_.size() < kMaxStored) items_.push_back(std::move(d));
}

void Diagnostics::add(DiagCode code, std::string section, std::uint64_t offset,
                      std::string message) {
  add(Diagnostic{code, std::move(section), offset, std::move(message)});
}

bool Diagnostics::has(DiagCode code) const {
  for (const Diagnostic& d : items_)
    if (d.code == code) return true;
  return false;
}

std::string Diagnostics::summary() const {
  std::string out;
  for (const Diagnostic& d : items_) {
    if (!out.empty()) out += "\n";
    out += d.to_string();
  }
  if (dropped() > 0) {
    if (!out.empty()) out += "\n";
    out += "(+" + std::to_string(dropped()) + " more diagnostics dropped)";
  }
  return out;
}

void Diagnostics::clear() {
  items_.clear();
  total_ = 0;
}

}  // namespace fsr::util
