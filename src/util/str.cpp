#include "util/str.hpp"

#include <cstdio>

namespace fsr::util {

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string pct(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals);
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string rpad(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string lpad(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace fsr::util
