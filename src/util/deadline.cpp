#include "util/deadline.hpp"

namespace fsr::util {

namespace {

// Per-thread ambient deadline state. `expired` is latched: once a poll
// observes expiry, every later poll answers without touching the clock.
thread_local Deadline tl_deadline;
thread_local bool tl_active = false;
thread_local bool tl_expired = false;
thread_local std::uint32_t tl_tick = 0;

}  // namespace

Deadline Deadline::after_seconds(double seconds) {
  Deadline d;
  if (seconds <= 0.0) return d;  // unlimited
  d.armed_ = true;
  d.at_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                             std::chrono::duration<double>(seconds));
  return d;
}

ScopedDeadline::ScopedDeadline(Deadline d) {
  had_previous_ = tl_active;
  previous_ = tl_deadline;
  tl_deadline = d;
  tl_active = !d.unlimited();
  tl_expired = false;
  tl_tick = 0;
}

ScopedDeadline::~ScopedDeadline() {
  tl_deadline = previous_;
  tl_active = had_previous_ && !previous_.unlimited();
  tl_expired = false;
  tl_tick = 0;
}

bool deadline_expired() {
  if (!tl_active) return false;
  if (tl_expired) return true;
  if (++tl_tick % detail::kDeadlineStride != 0) return false;
  tl_expired = tl_deadline.expired();
  return tl_expired;
}

Deadline current_deadline() { return tl_active ? tl_deadline : Deadline(); }

bool deadline_expired_now() {
  if (!tl_active) return false;
  if (tl_expired) return true;
  tl_expired = tl_deadline.expired();
  return tl_expired;
}

}  // namespace fsr::util
