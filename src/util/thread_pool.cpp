#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <system_error>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fsr::util {

namespace {

/// Pool-wide instruments, shared by every ThreadPool in the process
/// (the corpus engine builds a fresh pool per run; the counters tell
/// the whole-process story the metrics snapshot wants).
struct PoolMetrics {
  obs::Counter& submitted = obs::counter("pool.submitted");
  obs::Counter& executed = obs::counter("pool.executed");
  obs::Counter& steals = obs::counter("pool.steals");
  obs::Counter& idle_waits = obs::counter("pool.idle_waits");
  obs::Counter& idle_ns = obs::counter("pool.idle_ns");
  obs::Gauge& queue_depth = obs::gauge("pool.queue_depth");
  obs::Gauge& workers = obs::gauge("pool.workers");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace

std::size_t ThreadPool::default_workers() {
  if (const char* env = std::getenv("REPRO_THREADS"); env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0)
      return std::min(static_cast<std::size_t>(v), kMaxWorkers);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_workers();
  if (workers > kMaxWorkers) workers = kMaxWorkers;
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    try {
      workers_.emplace_back([this, i] { worker_loop(i); });
    } catch (const std::system_error&) {
      // Out of thread handles: run with what we have — try_claim scans
      // every queue, so the surplus queues are still served by stealing.
      if (!workers_.empty()) break;
      throw;  // zero workers would strand every submitted job
    }
  }
  pool_metrics().workers.set(static_cast<std::int64_t>(workers_.size()));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++queued_;
    pool_metrics().queue_depth.set(static_cast<std::int64_t>(queued_));
  }
  pool_metrics().submitted.add();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->jobs.push_back(std::move(job));
  }
  wake_.notify_one();
}

bool ThreadPool::try_claim(std::size_t self, std::function<void()>& job) {
  // Own queue first, newest job (LIFO: the data it needs is still hot) …
  {
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.jobs.empty()) {
      job = std::move(q.jobs.back());
      q.jobs.pop_back();
      return true;
    }
  }
  // … then steal the oldest job from a sibling (FIFO: least likely to
  // still be in the victim's cache).
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    Queue& q = *queues_[(self + i) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.jobs.empty()) {
      job = std::move(q.jobs.front());
      q.jobs.pop_front();
      pool_metrics().steals.add();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  if (obs::trace_enabled())
    obs::set_thread_name("pool-worker-" + std::to_string(self));
  for (;;) {
    std::function<void()> job;
    if (try_claim(self, job)) {
      {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --queued_;
        pool_metrics().queue_depth.set(static_cast<std::int64_t>(queued_));
      }
      job();
      pool_metrics().executed.add();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_ && queued_ == 0) return;  // drained: jobs never abandoned
    if (queued_ > 0) continue;          // raced a submit; re-scan the queues
    if (obs::metrics_enabled()) {
      // Starvation accounting: how long workers sit with nothing to
      // claim. The clock reads sit behind the enabled flag so disabled
      // runs keep the bare wait.
      const std::uint64_t wait_begin = obs::now_ns();
      wake_.wait(lock, [this] { return stop_ || queued_ > 0; });
      pool_metrics().idle_ns.add(obs::now_ns() - wait_begin);
      pool_metrics().idle_waits.add();
    } else {
      wake_.wait(lock, [this] { return stop_ || queued_ > 0; });
    }
    if (stop_ && queued_ == 0) return;
  }
}

}  // namespace fsr::util
