// Wall-clock measurement for the run-time comparison (paper §V-D).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fsr::util {

/// Monotonic stopwatch. Pinned to steady_clock — the same timebase the
/// obs layer's spans and histograms use, so every timing figure in the
/// system (bench tables, trace lanes, latency percentiles) agrees and
/// none of them can jump when the wall clock is adjusted.
class Stopwatch {
public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the measurement window.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const;

  /// Nanoseconds elapsed — the unit obs::Histogram records.
  [[nodiscard]] std::uint64_t elapsed_ns() const;

private:
  using clock = std::chrono::steady_clock;
  static_assert(clock::is_steady, "timing must be immune to wall-clock steps");
  clock::time_point start_;
};

/// Accumulates per-run timings and reports summary statistics.
class TimingStats {
public:
  void add(double seconds) { samples_.push_back(seconds); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double total() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

private:
  std::vector<double> samples_;
};

}  // namespace fsr::util
