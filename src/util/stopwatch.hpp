// Wall-clock measurement for the run-time comparison (paper §V-D).
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

namespace fsr::util {

/// Monotonic stopwatch.
class Stopwatch {
public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the measurement window.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const;

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates per-run timings and reports summary statistics.
class TimingStats {
public:
  void add(double seconds) { samples_.push_back(seconds); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double total() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

private:
  std::vector<double> samples_;
};

}  // namespace fsr::util
