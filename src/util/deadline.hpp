// Cooperative per-binary time budgets.
//
// Pathological inputs can make otherwise-linear loops run for a very
// long time (a mutated section header that admits a gigabyte "section",
// a traversal over hostile flow). A Deadline is a point on the steady
// clock; hot loops poll the *ambient* deadline — installed per worker
// by ScopedDeadline — through deadline_expired(), which amortizes the
// clock read over kStride calls so the check costs two thread-local
// loads on the fast path.
//
// Expiry is monotonic: once a deadline has passed it stays passed, so a
// single end-of-work check (eval::CorpusRunner does this) is enough to
// flag a binary `timed_out` even if every loop only *breaks* on expiry
// and returns partial results.
#pragma once

#include <chrono>
#include <cstdint>

namespace fsr::util {

/// A wall-clock budget on the steady clock. Default-constructed
/// deadlines are unlimited and never expire.
class Deadline {
public:
  Deadline() = default;

  /// Deadline `seconds` from now; non-positive budgets are unlimited.
  static Deadline after_seconds(double seconds);

  [[nodiscard]] bool unlimited() const { return !armed_; }
  [[nodiscard]] bool expired() const {
    return armed_ && clock::now() >= at_;
  }

private:
  using clock = std::chrono::steady_clock;
  bool armed_ = false;
  clock::time_point at_{};
};

/// Install `d` as the calling thread's ambient deadline for the scope's
/// lifetime; the previous ambient deadline (if any) is restored on
/// destruction, so scopes nest.
class ScopedDeadline {
public:
  explicit ScopedDeadline(Deadline d);
  ~ScopedDeadline();

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

private:
  Deadline previous_;
  bool had_previous_ = false;
};

/// Amortized poll of the ambient deadline: consults the clock once per
/// kStride calls (per thread). Returns false when no deadline is
/// installed. Safe and cheap to call from innermost loops.
bool deadline_expired();

/// Unamortized poll — reads the clock every call. Use at stage
/// boundaries (e.g. "did anything in this binary time out?").
bool deadline_expired_now();

/// The calling thread's ambient deadline (unlimited when none is
/// installed). Lets work farmed out to other threads — the sharded
/// sweep's decode jobs — re-install the originating binary's budget via
/// ScopedDeadline on the worker that picked the job up.
Deadline current_deadline();

namespace detail {
inline constexpr std::uint32_t kDeadlineStride = 1024;
}

}  // namespace fsr::util
