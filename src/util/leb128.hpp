// LEB128 variable-length integer codecs used by DWARF exception tables
// (.gcc_except_table call-site tables, .eh_frame CIE/FDE fields).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace fsr::util {

/// Decode an unsigned LEB128 value, advancing the reader.
/// Throws fsr::ParseError on truncation or on values wider than 64 bits.
std::uint64_t read_uleb128(ByteReader& r);

/// Decode a signed LEB128 value, advancing the reader.
std::int64_t read_sleb128(ByteReader& r);

/// Encode an unsigned LEB128 value.
void write_uleb128(ByteWriter& w, std::uint64_t value);

/// Encode a signed LEB128 value.
void write_sleb128(ByteWriter& w, std::int64_t value);

/// Number of bytes write_uleb128 would emit for this value.
std::size_t uleb128_size(std::uint64_t value);

/// Number of bytes write_sleb128 would emit for this value.
std::size_t sleb128_size(std::int64_t value);

}  // namespace fsr::util
