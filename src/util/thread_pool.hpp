// Work-stealing thread pool backing the parallel corpus engine.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
// steals FIFO from a sibling when its deque runs dry. External submits
// are distributed round-robin so a burst of corpus jobs lands spread
// across workers instead of serializing on one queue.
//
// The worker count comes from REPRO_THREADS (see default_workers), so
// every bench scales to the machine without a rebuild.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fsr::util {

class ThreadPool {
public:
  /// `workers == 0` means default_workers().
  explicit ThreadPool(std::size_t workers = 0);

  /// Drains every queued job, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Jobs may themselves submit further jobs.
  void submit(std::function<void()> job);

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// REPRO_THREADS if set to a positive integer, else
  /// hardware_concurrency (minimum 1). Clamped to kMaxWorkers.
  static std::size_t default_workers();

  /// Upper bound on workers: beyond any plausible core count, and far
  /// below where thread creation starts failing with ENOMEM.
  static constexpr std::size_t kMaxWorkers = 256;

private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> jobs;
  };

  void worker_loop(std::size_t self);
  bool try_claim(std::size_t self, std::function<void()>& job);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_ = false;          // guarded by wake_mutex_
  std::size_t queued_ = 0;     // jobs submitted, not yet claimed (wake_mutex_)
  std::size_t next_queue_ = 0; // round-robin submit cursor (wake_mutex_)
};

}  // namespace fsr::util
