// Byte-budgeted LRU cache template.
//
// The generalization of what synth::BinaryCache grew organically: a
// thread-safe map from key to shared_ptr<const Value> where every entry
// carries an explicit byte cost and the total is held under a budget by
// evicting the least-recently-used entries. Values are handed out by
// shared_ptr, so an eviction racing with a reader never invalidates the
// reader's copy — eviction only drops the cache's reference.
//
// Two caches ride on this today: synth::BinaryCache (generated corpus
// entries) and service::AnalysisCache (content-addressed parsed images
// + decoded views + per-tool results for the fsrd daemon). Both need
// the same discipline: expensive construction runs *outside* the lock,
// concurrent misses on the same key both construct (deterministic
// construction makes the copies identical) and the loser's insert is a
// no-op, and an entry whose cost alone exceeds the budget is served but
// never retained.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace fsr::util {

/// Monotonically counted cache statistics, read under the cache lock so
/// a snapshot is always self-consistent.
struct LruStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;   // entries dropped to fit the budget
  std::size_t rejected = 0;    // entries larger than the whole budget
  std::size_t bytes = 0;       // current resident cost
  std::size_t entries = 0;     // current resident count
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
public:
  using ValuePtr = std::shared_ptr<const Value>;

  explicit LruCache(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Look up `key`; a hit refreshes its recency. Counts a hit or miss.
  [[nodiscard]] ValuePtr find(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second.order);
    return it->second.value;
  }

  /// What one insert() did — returned explicitly so callers that mirror
  /// cache activity into external metrics see *their own* operation's
  /// effect, not a racy before/after stats diff.
  struct InsertOutcome {
    ValuePtr resident;         // the entry now answering for `key`
    std::size_t evicted = 0;   // LRU entries dropped to make room
    bool rejected = false;     // cost alone exceeded the budget
    bool inserted = false;     // false on a key race (incumbent kept)
  };

  /// Insert `value` with the given byte cost, evicting LRU entries
  /// until it fits. If `key` is already resident the existing entry is
  /// kept (first insert wins — concurrent misses construct identical
  /// values, so preferring the incumbent never changes results). An
  /// entry costlier than the entire budget is rejected, not inserted —
  /// the caller still gets `value` back to use once.
  InsertOutcome insert(const Key& key, ValuePtr value, std::size_t cost) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = map_.find(key); it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second.order);
      return {it->second.value, 0, false, false};
    }
    if (cost > capacity_bytes_) {
      ++stats_.rejected;
      return {std::move(value), 0, true, false};
    }
    InsertOutcome out{nullptr, 0, false, true};
    while (stats_.bytes + cost > capacity_bytes_ && !order_.empty()) {
      evict_last_locked();
      ++out.evicted;
    }
    order_.push_front(key);
    map_.emplace(key, Entry{value, cost, order_.begin()});
    stats_.bytes += cost;
    stats_.entries = map_.size();
    out.resident = std::move(value);
    return out;
  }

  /// find(), else build via `make` (outside the lock) and insert() at
  /// `cost(value)`. The convenience path both cache users want.
  template <typename Make, typename Cost>
  ValuePtr get_or(const Key& key, Make&& make, Cost&& cost) {
    if (ValuePtr hit = find(key)) return hit;
    ValuePtr built = std::forward<Make>(make)();
    if (built == nullptr) return nullptr;  // construction declined to cache
    const std::size_t bytes = std::forward<Cost>(cost)(*built);
    return insert(key, std::move(built), bytes).resident;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    order_.clear();
    stats_ = LruStats{};
  }

  [[nodiscard]] LruStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_bytes_;
  }

  /// Re-budget at runtime, evicting LRU entries until the resident
  /// bytes fit. Outstanding shared_ptr readers keep their values —
  /// shrinking only drops the cache's references. Returns the number of
  /// entries evicted to fit the new budget.
  std::size_t set_capacity_bytes(std::size_t capacity_bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_bytes_ = capacity_bytes;
    std::size_t evicted = 0;
    while (stats_.bytes > capacity_bytes_ && !order_.empty()) {
      evict_last_locked();
      ++evicted;
    }
    return evicted;
  }

private:
  struct Entry {
    ValuePtr value;
    std::size_t cost = 0;
    typename std::list<Key>::iterator order;
  };

  void evict_last_locked() {
    const Key& victim = order_.back();
    auto it = map_.find(victim);
    stats_.bytes -= it->second.cost;
    map_.erase(it);
    order_.pop_back();
    ++stats_.evictions;
    stats_.entries = map_.size();
  }

  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, Hash> map_;
  std::list<Key> order_;  // front = most recently used
  std::size_t capacity_bytes_;
  LruStats stats_;
};

}  // namespace fsr::util
