// Per-binary bump allocator for the decode-once analysis structures.
//
// A CodeView's flat address index and analysis substrate are eight-plus
// parallel arrays allocated together, read for the lifetime of the
// binary's evaluation, and dropped together. Giving each binary one
// Arena turns that into a handful of block allocations bumped through
// with pointer arithmetic and freed wholesale when the view goes away —
// no per-vector capacity growth, no allocator round trips on the sweep
// hot path, and no interleaving of substrate arrays with unrelated heap
// traffic.
//
// Arena hands out raw uninitialized storage; ArenaArray<T> is the typed
// fixed-size view the CodeView fields use, and ArenaVec<T> is the
// growable builder the fused sweep appends through while the final
// instruction count is still unknown (growth re-bumps a larger array
// and abandons the old one — abandoned bytes are reclaimed with the
// arena, which is the point of wholesale freeing).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace fsr::util {

class Arena {
public:
  Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Uninitialized storage for `n` objects of T (trivial types only —
  /// nothing in the arena is ever destructed).
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(raw_alloc(n * sizeof(T), alignof(T)));
  }

  /// Zero-filled storage for `n` objects of T.
  template <typename T>
  T* alloc_zero(std::size_t n) {
    T* p = alloc<T>(n);
    std::memset(static_cast<void*>(p), 0, n * sizeof(T));
    return p;
  }

  /// Bytes handed out so far (includes storage abandoned by ArenaVec
  /// growth — it is reclaimed only when the arena itself is freed).
  [[nodiscard]] std::size_t bytes_used() const { return used_; }
  /// Bytes reserved from the system allocator.
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }

private:
  void* raw_alloc(std::size_t bytes, std::size_t align) {
    std::size_t off = (cursor_ + align - 1) & ~(align - 1);
    // blocks_.empty() guards the zero-byte-first-allocation case (an
    // empty section's index): it must still return a valid pointer.
    if (blocks_.empty() || off + bytes > block_size_) {
      grow(bytes + align);
      off = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = off + bytes;
    used_ += bytes;
    return blocks_.back().get() + off;
  }

  void grow(std::size_t at_least) {
    // Geometric block growth keeps the block count logarithmic in the
    // binary's size; the first block is sized for a small .text so tiny
    // fixtures don't pay a megabyte up front.
    std::size_t size = block_size_ == 0 ? std::size_t{1} << 16 : block_size_ * 2;
    while (size < at_least) size *= 2;
    blocks_.push_back(std::make_unique<std::byte[]>(size));
    block_size_ = size;
    cursor_ = 0;
    reserved_ += size;
  }

  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::size_t block_size_ = 0;  // capacity of blocks_.back()
  std::size_t cursor_ = 0;      // bump offset within blocks_.back()
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

/// Fixed-size typed view over arena storage. Vector-shaped read API so
/// existing consumers (indexing, size/empty checks, range-for) compile
/// unchanged; the owning structure keeps the Arena alive.
template <typename T>
class ArenaArray {
public:
  ArenaArray() = default;
  ArenaArray(T* data, std::size_t size) : data_(data), size_(size) {}

  /// Allocate `n` zero-filled elements from `arena`.
  static ArenaArray zeroed(Arena& arena, std::size_t n) {
    return ArenaArray(arena.alloc_zero<T>(n), n);
  }
  /// Allocate `n` uninitialized elements (caller fills every slot).
  static ArenaArray uninit(Arena& arena, std::size_t n) {
    return ArenaArray(arena.alloc<T>(n), n);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

  /// Detach from the storage (the arena still owns the bytes).
  void clear() {
    data_ = nullptr;
    size_ = 0;
  }

private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Growable arena-backed array for build loops where the final size is
/// unknown until the end. push_back is a store + increment once the
/// reservation covers the workload (the sweep pre-sizes from its
/// density probe); growth bumps a doubled array and memcpys — the old
/// storage is abandoned to the arena.
template <typename T>
class ArenaVec {
public:
  static_assert(std::is_trivially_copyable_v<T>);

  explicit ArenaVec(Arena& arena) : arena_(&arena) {}

  void reserve(std::size_t n) {
    if (n > cap_) regrow(n);
  }

  void push_back(T v) {
    if (size_ == cap_) regrow(cap_ == 0 ? 64 : cap_ * 2);
    data_[size_++] = v;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }

  /// Freeze into the fixed-size view handed to consumers.
  [[nodiscard]] ArenaArray<T> finish() { return ArenaArray<T>(data_, size_); }

private:
  void regrow(std::size_t cap) {
    T* grown = arena_->alloc<T>(cap);
    if (size_ > 0) std::memcpy(grown, data_, size_ * sizeof(T));
    data_ = grown;
    cap_ = cap;
  }

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace fsr::util
