// Structured parse diagnostics.
//
// A Diagnostic pins a parse failure to a location (section + offset)
// and a machine-readable code, replacing context-free what-strings.
// Lenient parsers accumulate them into a Diagnostics sink and salvage
// what they can; strict parsers throw fsr::ParseError carrying one.
//
// The sink is bounded: a hostile input that trips millions of failures
// cannot grow memory without limit — overflow is counted, not stored.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fsr::util {

/// What went wrong, machine-readable. Stable names (to_string) feed the
/// JSONL run reports and the obs error counters.
enum class DiagCode {
  kGeneric,        // legacy string-only errors
  kTruncated,      // input ends before a structure completes
  kBadHeader,      // ELF ident / header field unusable
  kSectionBounds,  // section data outside the file (incl. overflow)
  kBadString,      // string-table offset / termination
  kBadSymbols,     // malformed symbol table
  kBadPlt,         // PLT / relocation reconstruction failed
  kBadCie,         // malformed CIE record
  kBadFde,         // malformed FDE record / broken CIE chain
  kBadLsda,        // malformed LSDA call-site table
  kBadEncoding,    // unsupported / corrupt DW_EH_PE encoding
  kBadNote,        // malformed .note.gnu.property
  kBadEhFrameHdr,  // malformed .eh_frame_hdr
  kTimeout,        // per-binary deadline expired mid-parse
};

const char* to_string(DiagCode code);

/// One structured parse diagnostic: code + where + human message.
struct Diagnostic {
  DiagCode code = DiagCode::kGeneric;
  std::string section;        // "" when the whole file is meant
  std::uint64_t offset = 0;   // byte offset within `section` (or file)
  std::string message;

  /// "[bad-fde] .eh_frame+0x40: FDE references unknown CIE"
  [[nodiscard]] std::string to_string() const;
};

/// Bounded accumulator for lenient parsing. Passing one to a parser
/// switches it into salvage mode: instead of throwing on the first
/// malformed structure it records a Diagnostic here and returns
/// everything decoded up to that point.
class Diagnostics {
public:
  /// Stored-entry cap; additions beyond it only bump dropped().
  static constexpr std::size_t kMaxStored = 64;

  void add(Diagnostic d);
  void add(DiagCode code, std::string section, std::uint64_t offset,
           std::string message);

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t dropped() const { return total_ - items_.size(); }
  [[nodiscard]] const std::vector<Diagnostic>& items() const { return items_; }

  /// True when any diagnostic carries `code`.
  [[nodiscard]] bool has(DiagCode code) const;

  /// One line per stored diagnostic (plus a dropped-count trailer).
  [[nodiscard]] std::string summary() const;

  void clear();

private:
  std::vector<Diagnostic> items_;
  std::size_t total_ = 0;
};

}  // namespace fsr::util
