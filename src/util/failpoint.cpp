#include "util/failpoint.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/error.hpp"

namespace fsr::util {

namespace detail {
std::atomic<bool> g_failpoints_armed{false};
}  // namespace detail

namespace {

// One slot per compiled-in site, index-matched to kFailpointSites. All
// fields are atomics so sites can be evaluated from any thread while a
// test (re)configures the registry; the fast path never takes a lock.
struct Point {
  std::atomic<bool> armed{false};
  std::atomic<double> probability{0.0};
  std::atomic<std::uint8_t> mode{0};
  std::atomic<int> arg{0};
  // -1 unlimited; >0 fires remaining; 0 exhausted (point self-disarms).
  std::atomic<std::int64_t> remaining{-1};
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> fires{0};
};

Point g_points[kFailpointSiteCount];
std::atomic<std::uint64_t> g_seed{1};
std::atomic<std::uint64_t> g_seq{0};

std::vector<std::string_view> split_on(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim_ws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

int site_index(std::string_view name) {
  for (std::size_t i = 0; i < kFailpointSiteCount; ++i)
    if (kFailpointSites[i] == name) return static_cast<int>(i);
  return -1;
}

void refresh_armed_flag() {
  bool any = false;
  for (const Point& p : g_points)
    if (p.armed.load(std::memory_order_relaxed)) { any = true; break; }
  detail::g_failpoints_armed.store(any, std::memory_order_relaxed);
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Seeded, sequence-numbered roll in [0,1). Global sequence rather than
// per-thread state: cross-thread interleaving changes *which* requests
// a fault lands on, never the long-run rate, and keeps a single-threaded
// sweep exactly reproducible for a given seed.
double roll() {
  const std::uint64_t n = g_seq.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h =
      splitmix64(g_seed.load(std::memory_order_relaxed) ^ (n * 0xd1342543de82ef95ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Claim one fire from the point's budget; false when exhausted. An
// exhausted point disarms itself so a `:count`-capped spec (e.g. three
// forced EMFILEs) stops cleanly without a configuration round-trip.
bool claim_fire(Point& p) {
  std::int64_t cur = p.remaining.load(std::memory_order_relaxed);
  while (true) {
    if (cur < 0) return true;  // unlimited
    if (cur == 0) return false;
    if (p.remaining.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed))
      break;
  }
  if (cur == 1) {  // we consumed the last fire
    p.armed.store(false, std::memory_order_relaxed);
    refresh_armed_flag();
  }
  return true;
}

const char* mode_name(FailMode m) {
  switch (m) {
    case FailMode::kError: return "error";
    case FailMode::kDelay: return "delay";
    case FailMode::kAbort: return "abort";
  }
  return "?";
}

// Errno names accepted in `error-<NAME>` specs. Only the ones a chaos
// spec plausibly wants; anything else can be given numerically.
struct ErrnoName { const char* name; int value; };
constexpr ErrnoName kErrnoNames[] = {
    {"EIO", EIO},           {"EMFILE", EMFILE},   {"ENFILE", ENFILE},
    {"ENOBUFS", ENOBUFS},   {"ENOMEM", ENOMEM},   {"ECONNRESET", ECONNRESET},
    {"ECONNREFUSED", ECONNREFUSED}, {"EPIPE", EPIPE}, {"EAGAIN", EAGAIN},
    {"ETIMEDOUT", ETIMEDOUT}, {"EINTR", EINTR},
};

bool parse_errno(std::string_view s, int* out) {
  for (const ErrnoName& e : kErrnoNames)
    if (s == e.name) { *out = e.value; return true; }
  int v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  if (s.empty() || v <= 0) return false;
  *out = v;
  return true;
}

bool parse_entry(std::string_view entry, FailpointConfig* cfg, std::string* error) {
  const std::vector<std::string_view> fields = split_on(entry, ':');
  if (fields.size() < 3 || fields.size() > 4) {
    if (error) *error = "expected name:prob:mode[:count] in '" + std::string(entry) + "'";
    return false;
  }
  if (site_index(fields[0]) < 0) {
    if (error) *error = "unknown failpoint '" + std::string(fields[0]) + "'";
    return false;
  }
  cfg->name = fields[0];

  char* end = nullptr;
  const std::string prob_str(fields[1]);
  cfg->probability = std::strtod(prob_str.c_str(), &end);
  if (end == prob_str.c_str() || *end != '\0' || cfg->probability < 0.0 ||
      cfg->probability > 1.0) {
    if (error) *error = "bad probability '" + prob_str + "' (want [0,1])";
    return false;
  }

  const std::string_view mode = fields[2];
  if (mode == "error") {
    cfg->mode = FailMode::kError;
    cfg->arg = 0;
  } else if (mode.rfind("error-", 0) == 0) {
    cfg->mode = FailMode::kError;
    if (!parse_errno(mode.substr(6), &cfg->arg)) {
      if (error) *error = "bad errno in '" + std::string(mode) + "'";
      return false;
    }
  } else if (mode.rfind("delay-", 0) == 0) {
    cfg->mode = FailMode::kDelay;
    const std::string ms(mode.substr(6));
    end = nullptr;
    const long v = std::strtol(ms.c_str(), &end, 10);
    if (end == ms.c_str() || *end != '\0' || v < 0 || v > 60'000) {
      if (error) *error = "bad delay '" + ms + "' (want 0..60000 ms)";
      return false;
    }
    cfg->arg = static_cast<int>(v);
  } else if (mode == "abort") {
    cfg->mode = FailMode::kAbort;
    cfg->arg = 0;
  } else {
    if (error) *error = "unknown mode '" + std::string(mode) + "'";
    return false;
  }

  cfg->max_fires = 0;
  if (fields.size() == 4) {
    const std::string count(fields[3]);
    end = nullptr;
    const long long v = std::strtoll(count.c_str(), &end, 10);
    if (end == count.c_str() || *end != '\0' || v <= 0) {
      if (error) *error = "bad fire count '" + count + "' (want > 0)";
      return false;
    }
    cfg->max_fires = static_cast<std::uint64_t>(v);
  }
  return true;
}

}  // namespace

namespace detail {

bool failpoint_fire(std::string_view name, int* errno_out) {
  const int idx = site_index(name);
  if (idx < 0) return false;  // unregistered caller name: never fires
  Point& p = g_points[static_cast<std::size_t>(idx)];
  if (!p.armed.load(std::memory_order_relaxed)) return false;
  p.evaluations.fetch_add(1, std::memory_order_relaxed);
  const double prob = p.probability.load(std::memory_order_relaxed);
  if (prob < 1.0 && roll() >= prob) return false;
  if (!claim_fire(p)) return false;
  p.fires.fetch_add(1, std::memory_order_relaxed);

  const FailMode mode = static_cast<FailMode>(p.mode.load(std::memory_order_relaxed));
  const int arg = p.arg.load(std::memory_order_relaxed);
  switch (mode) {
    case FailMode::kError: {
      const int err = arg != 0 ? arg : EIO;
      errno = err;
      if (errno_out != nullptr) *errno_out = err;
      return true;
    }
    case FailMode::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(arg));
      return false;
    case FailMode::kAbort:
      std::fprintf(stderr, "failpoint '%.*s': abort\n",
                   static_cast<int>(name.size()), name.data());
      std::fflush(stderr);
      std::abort();
  }
  return false;
}

}  // namespace detail

void set_failpoint(const FailpointConfig& cfg) {
  const int idx = site_index(cfg.name);
  if (idx < 0)
    throw UsageError("unknown failpoint '" + std::string(cfg.name) + "'");
  if (cfg.probability < 0.0 || cfg.probability > 1.0)
    throw UsageError("failpoint probability must be in [0,1]");
  Point& p = g_points[static_cast<std::size_t>(idx)];
  p.probability.store(cfg.probability, std::memory_order_relaxed);
  p.mode.store(static_cast<std::uint8_t>(cfg.mode), std::memory_order_relaxed);
  p.arg.store(cfg.arg, std::memory_order_relaxed);
  p.remaining.store(cfg.max_fires == 0 ? -1
                                       : static_cast<std::int64_t>(cfg.max_fires),
                    std::memory_order_relaxed);
  p.armed.store(true, std::memory_order_relaxed);
  detail::g_failpoints_armed.store(true, std::memory_order_relaxed);
}

void clear_failpoints() {
  for (Point& p : g_points) {
    p.armed.store(false, std::memory_order_relaxed);
    p.probability.store(0.0, std::memory_order_relaxed);
    p.mode.store(0, std::memory_order_relaxed);
    p.arg.store(0, std::memory_order_relaxed);
    p.remaining.store(-1, std::memory_order_relaxed);
    p.evaluations.store(0, std::memory_order_relaxed);
    p.fires.store(0, std::memory_order_relaxed);
  }
  detail::g_failpoints_armed.store(false, std::memory_order_relaxed);
}

bool configure_failpoints(std::string_view spec, std::string* error) {
  // Validate the whole spec before arming anything: a half-applied
  // config is worse for a test than a rejected one.
  std::vector<FailpointConfig> parsed;
  for (std::string_view entry : split_on(spec, ',')) {
    entry = trim_ws(entry);
    if (entry.empty()) continue;
    FailpointConfig cfg;
    if (!parse_entry(entry, &cfg, error)) return false;
    parsed.push_back(cfg);
  }
  for (const FailpointConfig& cfg : parsed) set_failpoint(cfg);
  return true;
}

bool failpoints_init_from_env() {
  const char* seed = std::getenv("REPRO_FAILPOINT_SEED");
  if (seed != nullptr && *seed != '\0')
    set_failpoint_seed(std::strtoull(seed, nullptr, 10));
  const char* spec = std::getenv("REPRO_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return false;
  std::string error;
  if (!configure_failpoints(spec, &error)) {
    std::fprintf(stderr, "REPRO_FAILPOINTS ignored: %s\n", error.c_str());
    return false;
  }
  return detail::g_failpoints_armed.load(std::memory_order_relaxed);
}

void set_failpoint_seed(std::uint64_t seed) {
  g_seed.store(seed, std::memory_order_relaxed);
  g_seq.store(0, std::memory_order_relaxed);
}

std::vector<FailpointStats> failpoint_stats() {
  std::vector<FailpointStats> out;
  for (std::size_t i = 0; i < kFailpointSiteCount; ++i) {
    const Point& p = g_points[i];
    const std::uint64_t evals = p.evaluations.load(std::memory_order_relaxed);
    const std::uint64_t fires = p.fires.load(std::memory_order_relaxed);
    if (evals == 0 && fires == 0 && !p.armed.load(std::memory_order_relaxed))
      continue;
    out.push_back({kFailpointSites[i], evals, fires});
  }
  return out;
}

std::uint64_t failpoint_fires() {
  std::uint64_t total = 0;
  for (const Point& p : g_points) total += p.fires.load(std::memory_order_relaxed);
  return total;
}

}  // namespace fsr::util
