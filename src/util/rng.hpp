// Deterministic pseudo-random number generation for corpus synthesis.
//
// The corpus generator must produce bit-identical binaries for a given
// seed so that experiments are reproducible across machines and runs;
// std::mt19937 distributions are not guaranteed stable across standard
// library implementations, so we implement the distributions ourselves
// on top of xoshiro256**.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace fsr::util {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Pick an index in [0, weights.size()) with probability proportional
  /// to the weights. Requires a nonempty list with a positive total.
  std::size_t weighted(std::span<const double> weights);
  std::size_t weighted(std::initializer_list<double> weights) {
    return weighted(std::span<const double>(weights.begin(), weights.size()));
  }

  /// Geometric-ish size helper: mean-targeted positive integer, bounded.
  /// Used for function sizes and counts where a long tail is wanted.
  std::uint64_t skewed(std::uint64_t min, std::uint64_t mean, std::uint64_t max);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(range(0, i));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Derive an independent child generator; used to decorrelate
  /// per-binary streams inside a corpus.
  Rng fork();

private:
  std::uint64_t s_[4];
};

}  // namespace fsr::util
