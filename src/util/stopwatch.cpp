#include "util/stopwatch.hpp"

#include <algorithm>
#include <numeric>

namespace fsr::util {

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(clock::now() - start_).count();
}

std::uint64_t Stopwatch::elapsed_ns() const {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_);
  return ns.count() < 0 ? 0 : static_cast<std::uint64_t>(ns.count());
}

double TimingStats::total() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double TimingStats::mean() const {
  return samples_.empty() ? 0.0 : total() / static_cast<double>(samples_.size());
}

double TimingStats::min() const {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double TimingStats::max() const {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

}  // namespace fsr::util
