#include "util/bytes.hpp"

#include <cstring>

#include "util/error.hpp"

namespace fsr::util {

void ByteReader::require(std::size_t n) const {
  if (pos_ + n > data_.size() || pos_ + n < pos_)
    throw ParseError("read of " + std::to_string(n) + " bytes at offset " +
                     std::to_string(pos_) + " exceeds buffer of " +
                     std::to_string(data_.size()));
}

void ByteReader::seek(std::size_t offset) {
  if (offset > data_.size())
    throw ParseError("seek to " + std::to_string(offset) + " exceeds buffer of " +
                     std::to_string(data_.size()));
  pos_ = offset;
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::vector<std::uint8_t> ByteReader::bytes(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> ByteReader::view(std::size_t n) {
  require(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::cstring() {
  std::string out;
  for (;;) {
    std::uint8_t c = u8();
    if (c == 0) break;
    out.push_back(static_cast<char>(c));
  }
  return out;
}

double ByteReader::f64() {
  std::uint64_t bits = u64();
  double v;
  static_assert(sizeof(v) == sizeof(bits));
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str32() {
  const std::uint32_t n = u32();
  require(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::uint8_t ByteReader::peek(std::size_t delta) const {
  if (pos_ + delta >= data_.size())
    throw ParseError("peek past end of buffer");
  return data_[pos_ + delta];
}

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::bytes(std::span<const std::uint8_t> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void ByteWriter::cstring(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
  buf_.push_back(0);
}

void ByteWriter::fill(std::size_t n, std::uint8_t b) {
  buf_.insert(buf_.end(), n, b);
}

void ByteWriter::align(std::size_t alignment, std::uint8_t filler) {
  if (alignment == 0) throw UsageError("alignment must be nonzero");
  while (buf_.size() % alignment != 0) buf_.push_back(filler);
}

void ByteWriter::patch_u32(std::size_t at, std::uint32_t v) {
  if (at + 4 > buf_.size()) throw UsageError("patch_u32 out of range");
  for (int i = 0; i < 4; ++i)
    buf_[at + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
}

void ByteWriter::patch_u64(std::size_t at, std::uint64_t v) {
  if (at + 8 > buf_.size()) throw UsageError("patch_u64 out of range");
  for (int i = 0; i < 8; ++i)
    buf_[at + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(v) == sizeof(bits));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str32(std::string_view s) {
  if (s.size() > 0xffffffffu) throw UsageError("str32 string too long");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

}  // namespace fsr::util
