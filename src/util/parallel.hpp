// Ordered parallel map: produce results on pool workers, consume them
// on the calling thread in strict index order (a sequenced reduction).
//
// This is the primitive behind the parallel corpus engine: generation
// and analysis fan out across workers, while aggregation stays
// single-threaded and deterministic — tables come out bit-identical to
// a sequential run no matter the worker count.
//
// A bounded in-flight window keeps memory flat for arbitrarily large
// corpora (the streaming promise of synth::for_each_binary).
#pragma once

#include <cstddef>
#include <exception>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "util/thread_pool.hpp"

namespace fsr::util {

/// Call `produce(i)` for i in [0, n) on pool workers and
/// `consume(i, result)` for every index, in increasing index order, on
/// the calling thread. `produce` must be safe to invoke concurrently
/// from several threads; `consume` never is. At most `window` results
/// (default: 4 per worker) exist at once. The first exception thrown by
/// `produce` is rethrown here, after in-flight jobs finish.
template <typename T, typename Produce, typename Consume>
void parallel_map_ordered(ThreadPool& pool, std::size_t n, Produce&& produce,
                          Consume&& consume, std::size_t window = 0) {
  if (n == 0) return;
  if (window == 0) window = pool.worker_count() * 4;
  if (window < 2) window = 2;

  struct Slot {
    std::optional<T> value;
    std::exception_ptr error;
  };
  struct Shared {
    std::mutex mutex;
    std::condition_variable ready;
    std::map<std::size_t, Slot> done;
  };
  // Jobs co-own the state: a producer may still be inside notify_one()
  // after publishing the final result, at which point the consumer has
  // already been released — stack storage would be destroyed under it.
  auto shared = std::make_shared<Shared>();

  std::size_t submitted = 0;
  std::size_t consumed = 0;
  const auto submit_one = [&](std::size_t index) {
    pool.submit([shared, &produce, index] {
      Slot slot;
      try {
        slot.value.emplace(produce(index));
      } catch (...) {
        slot.error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(shared->mutex);
        shared->done.emplace(index, std::move(slot));
      }
      shared->ready.notify_one();
    });
  };

  std::exception_ptr first_error;
  while (consumed < n) {
    while (submitted < n && submitted < consumed + window && !first_error)
      submit_one(submitted++);
    if (first_error && submitted == consumed) break;  // in-flight drained
    Slot slot;
    {
      std::unique_lock<std::mutex> lock(shared->mutex);
      shared->ready.wait(lock, [&] {
        return shared->done.find(consumed) != shared->done.end();
      });
      auto node = shared->done.extract(consumed);
      slot = std::move(node.mapped());
    }
    ++consumed;
    if (slot.error) {
      if (!first_error) first_error = slot.error;
      continue;  // keep draining so workers stop touching `shared`
    }
    if (!first_error) consume(consumed - 1, std::move(*slot.value));
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fsr::util
