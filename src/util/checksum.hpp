// FNV-1a 64 checksums.
//
// One hash, three users: the service's content addressing (ContentId),
// the persistent cache's per-record integrity checks, and the decode
// bench's output fingerprints. FNV-1a is not cryptographic — it guards
// against torn writes, bit rot, and accidental corruption, not an
// adversary who can write the cache file — but it is branch-free,
// allocation-free, and fast enough to run over every record payload on
// every persistent-cache read.
#pragma once

#include <cstdint>
#include <span>

namespace fsr::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Continue an FNV-1a 64 hash over `bytes` from a previous state (or
/// the offset basis). Feeding buffers piecewise matches hashing their
/// concatenation.
[[nodiscard]] inline std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                                           std::uint64_t state = kFnvOffsetBasis) {
  for (const std::uint8_t b : bytes) {
    state ^= b;
    state *= kFnvPrime;
  }
  return state;
}

}  // namespace fsr::util
