// Little-endian byte buffer reader/writer.
//
// Every binary structure in this project (ELF headers, x86 machine code,
// DWARF EH tables) is little-endian, so the reader/writer are fixed to
// little-endian and do not attempt to be generic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fsr::util {

/// Sequential reader over a read-only byte span. Bounds-checked: any
/// attempt to read past the end throws fsr::ParseError.
class ByteReader {
public:
  explicit ByteReader(std::span<const std::uint8_t> data, std::size_t offset = 0)
      : data_(data), pos_(offset) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t remaining() const {
    return pos_ <= data_.size() ? data_.size() - pos_ : 0;
  }
  [[nodiscard]] bool eof() const { return pos_ >= data_.size(); }

  /// Reposition the cursor. Seeking beyond the end throws.
  void seek(std::size_t offset);
  /// Advance the cursor by n bytes. Throws if that passes the end.
  void skip(std::size_t n);

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// Read exactly n bytes.
  std::vector<std::uint8_t> bytes(std::size_t n);
  /// View n bytes without copying; the view is valid as long as the
  /// underlying buffer is.
  std::span<const std::uint8_t> view(std::size_t n);
  /// Read a NUL-terminated string (the NUL is consumed, not returned).
  std::string cstring();

  /// Peek a byte at pos()+delta without moving the cursor.
  [[nodiscard]] std::uint8_t peek(std::size_t delta = 0) const;

  /// IEEE-754 double stored as its u64 bit pattern (bit-exact round
  /// trip; serialization must never re-round a timing).
  double f64();
  /// u32 length followed by that many bytes (ByteWriter::str32's form).
  std::string str32();

private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Growable little-endian byte sink.
class ByteWriter {
public:
  ByteWriter() = default;

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> b);
  /// Write the string contents followed by a NUL terminator.
  void cstring(std::string_view s);
  /// Append n copies of the given filler byte.
  void fill(std::size_t n, std::uint8_t b = 0);
  /// Pad with filler bytes until size() is a multiple of alignment.
  void align(std::size_t alignment, std::uint8_t filler = 0);

  /// Overwrite 4 bytes at a previously written offset (for back-patching
  /// length fields and relative offsets).
  void patch_u32(std::size_t at, std::uint32_t v);
  void patch_u64(std::size_t at, std::uint64_t v);

  /// IEEE-754 double as its u64 bit pattern.
  void f64(double v);
  /// u32 length prefix + the string bytes (no terminator). The
  /// persistent cache's string form: length-checked on read, so a
  /// corrupt length cannot walk out of the record.
  void str32(std::string_view s);

private:
  std::vector<std::uint8_t> buf_;
};

}  // namespace fsr::util
