// Named, seeded failpoints: deliberate fault injection for the service
// stack.
//
// PR 4's inject engine mutates *inputs*; failpoints mutate the
// *environment* — a read(2) that fails mid-frame, an accept(2) that
// reports EMFILE, a decode that dies under memory pressure, a cache
// insert that never lands. Each site in the tree is a named point
// (see kFailpointSites); arming one attaches a probability, a mode,
// and an optional fire budget:
//
//   error    the site reports failure (errno is set to the configured
//            value when one is given) and the caller's normal error
//            path runs — the whole point is that this path exists
//   delay    the site sleeps N milliseconds, then proceeds normally
//            (slow-disk / scheduler-stall simulation)
//   abort    the process dies on the spot (crash-only supervision food)
//
// Configuration comes from code (set_failpoint, used by tests) or the
// environment:
//
//   REPRO_FAILPOINTS=name:prob:mode[,name:prob:mode...]
//     mode := error | error-<ERRNO|number> | delay-<ms> | abort
//     an optional 4th field caps total fires: svc.accept:1:error-EMFILE:3
//   REPRO_FAILPOINT_SEED=N   seeds the probability rolls (default 1)
//
// Cost contract: a site whose registry has nothing armed is ONE relaxed
// atomic load and a predicted branch — cheap enough for per-frame and
// per-decode placement, priced by the existing <3% bench_obs_overhead
// gate (the eval.decode site sits on the corpus hot path it measures).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fsr::util {

enum class FailMode : std::uint8_t { kError = 0, kDelay = 1, kAbort = 2 };

struct FailpointConfig {
  std::string_view name;     // must be one of kFailpointSites
  double probability = 1.0;  // chance each evaluation fires, [0,1]
  FailMode mode = FailMode::kError;
  int arg = 0;               // error: errno to set (0 = EIO); delay: milliseconds
  std::uint64_t max_fires = 0;  // 0 = unlimited; else auto-disarm after N fires
};

struct FailpointStats {
  std::string_view name;
  std::uint64_t evaluations = 0;  // times an armed site was reached
  std::uint64_t fires = 0;        // times it actually injected
};

/// Every failpoint site compiled into the tree. Chaos sweeps iterate
/// this list; configure_failpoints() rejects names not on it, so a
/// typo'd spec fails loudly instead of silently injecting nothing.
inline constexpr std::string_view kFailpointSites[] = {
    "svc.read_frame",      // proto read_frame entry (server and client side)
    "svc.write_frame",     // proto write_frame entry
    "svc.accept",          // Server accept loop: forces the accept errno
    "svc.spawn",           // Server connection-reader spawn
    "cache.insert_image",  // AnalysisCache image insert -> served uncached
    "cache.insert_result", // AnalysisCache result insert -> served uncached
    "cache.build_image",   // make_cached_image entry -> parse failure
    "eval.decode",         // decode_shared entry (allocation-heavy front-end)
    "pcache.write",        // PersistentStore append -> record not persisted
};
inline constexpr std::size_t kFailpointSiteCount =
    sizeof(kFailpointSites) / sizeof(kFailpointSites[0]);

namespace detail {
extern std::atomic<bool> g_failpoints_armed;
/// Slow path: registry lookup + probability roll + mode side effects.
/// Returns true only for a fired `error` point (delay sleeps and
/// returns false; abort never returns).
bool failpoint_fire(std::string_view name, int* errno_out);
}  // namespace detail

/// Evaluate the named failpoint. False (after one relaxed load) when
/// nothing is armed anywhere. On a fired `error` point: returns true,
/// sets errno to the configured value, and writes it to *errno_out when
/// given — the caller runs its normal error path.
inline bool failpoint(std::string_view name, int* errno_out = nullptr) {
  if (!detail::g_failpoints_armed.load(std::memory_order_relaxed)) return false;
  return detail::failpoint_fire(name, errno_out);
}

/// Arm one point. Throws UsageError for a name not in kFailpointSites
/// or a probability outside [0,1].
void set_failpoint(const FailpointConfig& cfg);

/// Disarm everything and zero the per-point counters.
void clear_failpoints();

/// Parse and arm a "name:prob:mode[:count],..." spec. On a malformed
/// entry nothing is armed, *error (when given) describes the problem,
/// and false is returned.
bool configure_failpoints(std::string_view spec, std::string* error = nullptr);

/// Arm from REPRO_FAILPOINTS / REPRO_FAILPOINT_SEED. A malformed spec
/// is reported on stderr and ignored (a daemon must not die to a typo).
/// Returns true when the env armed at least one point.
bool failpoints_init_from_env();

/// Seed the probability rolls (and reset the roll sequence) so a chaos
/// run is reproducible. clear_failpoints() keeps the current seed.
void set_failpoint_seed(std::uint64_t seed);

/// Per-point counters for every armed-or-ever-armed site this process.
std::vector<FailpointStats> failpoint_stats();

/// Total fires across all points (cheap aggregate for gates).
std::uint64_t failpoint_fires();

}  // namespace fsr::util
