#include "util/leb128.hpp"

#include "util/error.hpp"

namespace fsr::util {

std::uint64_t read_uleb128(ByteReader& r) {
  std::uint64_t result = 0;
  unsigned shift = 0;
  for (;;) {
    if (shift >= 64) throw ParseError("ULEB128 value exceeds 64 bits");
    std::uint8_t byte = r.u8();
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
}

std::int64_t read_sleb128(ByteReader& r) {
  std::int64_t result = 0;
  unsigned shift = 0;
  std::uint8_t byte = 0;
  for (;;) {
    if (shift >= 64) throw ParseError("SLEB128 value exceeds 64 bits");
    byte = r.u8();
    result |= static_cast<std::int64_t>(static_cast<std::uint64_t>(byte & 0x7f) << shift);
    shift += 7;
    if ((byte & 0x80) == 0) break;
  }
  if (shift < 64 && (byte & 0x40) != 0)
    result |= -(static_cast<std::int64_t>(1) << shift);
  return result;
}

void write_uleb128(ByteWriter& w, std::uint64_t value) {
  do {
    std::uint8_t byte = value & 0x7f;
    value >>= 7;
    if (value != 0) byte |= 0x80;
    w.u8(byte);
  } while (value != 0);
}

void write_sleb128(ByteWriter& w, std::int64_t value) {
  bool more = true;
  while (more) {
    std::uint8_t byte = value & 0x7f;
    value >>= 7;
    bool sign = (byte & 0x40) != 0;
    if ((value == 0 && !sign) || (value == -1 && sign))
      more = false;
    else
      byte |= 0x80;
    w.u8(byte);
  }
}

std::size_t uleb128_size(std::uint64_t value) {
  std::size_t n = 0;
  do {
    value >>= 7;
    ++n;
  } while (value != 0);
  return n;
}

std::size_t sleb128_size(std::int64_t value) {
  std::size_t n = 0;
  bool more = true;
  while (more) {
    std::uint8_t byte = value & 0x7f;
    value >>= 7;
    bool sign = (byte & 0x40) != 0;
    if ((value == 0 && !sign) || (value == -1 && sign)) more = false;
    ++n;
  }
  return n;
}

}  // namespace fsr::util
