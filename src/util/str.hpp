// Small string/formatting helpers shared by table renderers and examples.
#pragma once

#include <cstdint>
#include <string>

namespace fsr::util {

/// "0x1234" style hex rendering of an address.
std::string hex(std::uint64_t v);

/// Fixed-precision percentage, e.g. pct(0.99345, 3) == "99.345".
std::string pct(double fraction, int decimals = 3);

/// Fixed-precision decimal rendering, e.g. fixed(1.1812, 3) == "1.181".
std::string fixed(double v, int decimals);

/// Left-pad (right-align) a string to the given width.
std::string rpad(const std::string& s, std::size_t width);

/// Right-pad (left-align) a string to the given width.
std::string lpad(const std::string& s, std::size_t width);

}  // namespace fsr::util
