// Error types shared across the reproduction libraries.
//
// Substrate code throws these on malformed input (truncated ELF, bad
// DWARF encodings, ...). Analysis code that must be robust against
// arbitrary bytes (the linear-sweep disassembler) reports recoverable
// failures through return values instead; exceptions are reserved for
// "the caller handed us something structurally broken".
//
// ParseError carries a structured util::Diagnostic (error code +
// section + offset + message) so catchers can report *where* an input
// broke, not just that it did. The plain-string constructor remains for
// sites with no positional context (code DiagCode::kGeneric).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

#include "util/diagnostic.hpp"

namespace fsr {

/// Base class for all errors raised by this project.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when parsing a malformed or truncated binary structure.
class ParseError : public Error {
public:
  explicit ParseError(const std::string& what)
      : Error("parse error: " + what),
        diagnostic_{util::DiagCode::kGeneric, "", 0, what} {}
  explicit ParseError(util::Diagnostic d)
      : Error("parse error: " + d.to_string()), diagnostic_(std::move(d)) {}

  /// Structured location + code of the failure (kGeneric for
  /// string-only throws).
  [[nodiscard]] const util::Diagnostic& diagnostic() const { return diagnostic_; }

private:
  util::Diagnostic diagnostic_;
};

/// Raised when an encoder/builder is asked to produce something it cannot.
class EncodeError : public Error {
public:
  explicit EncodeError(const std::string& what) : Error("encode error: " + what) {}
};

/// Raised on API misuse (precondition violation detectable at run time).
class UsageError : public Error {
public:
  explicit UsageError(const std::string& what) : Error("usage error: " + what) {}
};

/// Raised when a cooperative util::Deadline expires inside a stage that
/// cannot return a partial result. Stages that can (the sweeps, the
/// traversals, the lenient parsers) return what they have instead.
class TimeoutError : public Error {
public:
  explicit TimeoutError(const std::string& what) : Error("timeout: " + what) {}
};

}  // namespace fsr
