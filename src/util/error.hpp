// Error types shared across the reproduction libraries.
//
// Substrate code throws these on malformed input (truncated ELF, bad
// DWARF encodings, ...). Analysis code that must be robust against
// arbitrary bytes (the linear-sweep disassembler) reports recoverable
// failures through return values instead; exceptions are reserved for
// "the caller handed us something structurally broken".
#pragma once

#include <stdexcept>
#include <string>

namespace fsr {

/// Base class for all errors raised by this project.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when parsing a malformed or truncated binary structure.
class ParseError : public Error {
public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Raised when an encoder/builder is asked to produce something it cannot.
class EncodeError : public Error {
public:
  explicit EncodeError(const std::string& what) : Error("encode error: " + what) {}
};

/// Raised on API misuse (precondition violation detectable at run time).
class UsageError : public Error {
public:
  explicit UsageError(const std::string& what) : Error("usage error: " + what) {}
};

}  // namespace fsr
