// .note.gnu.property — how a binary advertises its hardware-security
// features. CET-enabled x86 binaries carry GNU_PROPERTY_X86_FEATURE_1
// with the IBT and SHSTK bits; BTI-enabled AArch64 binaries carry
// GNU_PROPERTY_AARCH64_FEATURE_1 with BTI/PAC. FunSeeker "operates only
// on CET-enabled binaries" (paper §VI) — this note is how a tool can
// tell, without heuristics, that the end-branch discipline applies.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "elf/image.hpp"
#include "util/diagnostic.hpp"

namespace fsr::elf {

// Feature bits (x86: GNU_PROPERTY_X86_FEATURE_1_AND).
inline constexpr std::uint32_t kFeatureX86Ibt = 1u << 0;
inline constexpr std::uint32_t kFeatureX86Shstk = 1u << 1;
// Feature bits (AArch64: GNU_PROPERTY_AARCH64_FEATURE_1_AND).
inline constexpr std::uint32_t kFeatureArmBti = 1u << 0;
inline constexpr std::uint32_t kFeatureArmPac = 1u << 1;

/// Serialize a .note.gnu.property section advertising `feature_bits`
/// under the architecture-appropriate property type.
std::vector<std::uint8_t> build_gnu_property(Machine machine, std::uint32_t feature_bits);

/// Extract the FEATURE_1_AND bits from raw note bytes; nullopt when the
/// note carries no such property.
///
/// Strict mode (`diags == nullptr`, the default) throws fsr::ParseError
/// on malformed note structure. Lenient mode records a Diagnostic and
/// returns whatever a well-formed prefix yielded (usually nullopt).
std::optional<std::uint32_t> parse_gnu_property(std::span<const std::uint8_t> data,
                                                Machine machine,
                                                util::Diagnostics* diags = nullptr);

/// Convenience: the feature bits of an image's .note.gnu.property
/// section, or nullopt when absent/irrelevant.
std::optional<std::uint32_t> feature_bits(const Image& image);

/// True when the image advertises the end-branch discipline this
/// project's identifiers rely on (IBT on x86, BTI on AArch64).
bool has_branch_tracking(const Image& image);

}  // namespace fsr::elf
