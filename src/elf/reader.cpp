#include "elf/reader.hpp"

#include <string>

#include "elf/types.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fsr::elf {

namespace {

using util::ByteReader;

struct RawShdr {
  std::uint32_t name = 0;
  std::uint32_t type = 0;
  std::uint64_t flags = 0;
  std::uint64_t addr = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t link = 0;
  std::uint32_t info = 0;
  std::uint64_t align = 0;
  std::uint64_t entsize = 0;
};

std::string name_from(const std::vector<std::uint8_t>& strtab, std::uint64_t off) {
  if (off >= strtab.size()) throw ParseError("string table offset out of range");
  const char* p = reinterpret_cast<const char*>(strtab.data() + off);
  std::size_t maxlen = strtab.size() - off;
  std::size_t len = 0;
  while (len < maxlen && p[len] != 0) ++len;
  if (len == maxlen) throw ParseError("unterminated string table entry");
  return std::string(p, len);
}

std::vector<Symbol> parse_symbols(const std::vector<std::uint8_t>& tab,
                                  const std::vector<std::uint8_t>& strtab,
                                  bool is64bit,
                                  const std::vector<std::string>& section_names) {
  const std::size_t entsize = is64bit ? kSymSize64 : kSymSize32;
  if (tab.size() % entsize != 0) throw ParseError("symbol table size not a multiple of entry size");
  std::vector<Symbol> out;
  ByteReader r(tab);
  const std::size_t n = tab.size() / entsize;
  for (std::size_t i = 0; i < n; ++i) {
    Symbol s;
    std::uint16_t shndx;
    if (is64bit) {
      std::uint32_t name_off = r.u32();
      s.info = r.u8();
      r.skip(1);  // st_other
      shndx = r.u16();
      s.value = r.u64();
      s.size = r.u64();
      s.name = name_from(strtab, name_off);
    } else {
      std::uint32_t name_off = r.u32();
      s.value = r.u32();
      s.size = r.u32();
      s.info = r.u8();
      r.skip(1);
      shndx = r.u16();
      s.name = name_from(strtab, name_off);
    }
    if (i == 0) continue;  // null symbol
    if (shndx != kShnUndef && shndx < section_names.size())
      s.section = section_names[shndx];
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

Image read_elf(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.remaining() < 16) throw ParseError("file too small for ELF header");
  if (r.u8() != kMag0 || r.u8() != kMag1 || r.u8() != kMag2 || r.u8() != kMag3)
    throw ParseError("bad ELF magic");
  const std::uint8_t klass = r.u8();
  if (klass != kClass32 && klass != kClass64) throw ParseError("bad ELF class");
  const bool is64bit = klass == kClass64;
  if (r.u8() != kDataLsb) throw ParseError("only little-endian ELF supported");
  if (r.u8() != kEvCurrent) throw ParseError("bad ELF version");
  r.seek(16);

  Image img;
  const std::uint16_t etype = r.u16();
  const std::uint16_t emach = r.u16();
  if (etype == kEtExec)
    img.kind = BinaryKind::kExec;
  else if (etype == kEtDyn)
    img.kind = BinaryKind::kPie;
  else
    throw ParseError("unsupported e_type " + std::to_string(etype));
  if (emach == kEmX8664 && is64bit)
    img.machine = Machine::kX8664;
  else if (emach == kEmAarch64 && is64bit)
    img.machine = Machine::kArm64;
  else if (emach == kEm386 && !is64bit)
    img.machine = Machine::kX86;
  else
    throw ParseError("unsupported e_machine/class combination");
  r.skip(4);  // e_version

  std::uint64_t shoff;
  if (is64bit) {
    img.entry = r.u64();
    r.skip(8);  // e_phoff
    shoff = r.u64();
  } else {
    img.entry = r.u32();
    r.skip(4);
    shoff = r.u32();
  }
  r.skip(4);  // e_flags
  r.skip(2);  // e_ehsize
  r.skip(2);  // e_phentsize
  r.skip(2);  // e_phnum
  const std::uint16_t shentsize = r.u16();
  const std::uint16_t shnum = r.u16();
  const std::uint16_t shstrndx = r.u16();

  const std::size_t want_shentsize = is64bit ? kShdrSize64 : kShdrSize32;
  if (shentsize != want_shentsize) throw ParseError("unexpected section header entry size");
  if (shstrndx >= shnum) throw ParseError("e_shstrndx out of range");

  // Section headers.
  std::vector<RawShdr> shdrs(shnum);
  for (std::uint16_t i = 0; i < shnum; ++i) {
    r.seek(shoff + static_cast<std::uint64_t>(i) * shentsize);
    RawShdr& h = shdrs[i];
    if (is64bit) {
      h.name = r.u32();
      h.type = r.u32();
      h.flags = r.u64();
      h.addr = r.u64();
      h.offset = r.u64();
      h.size = r.u64();
      h.link = r.u32();
      h.info = r.u32();
      h.align = r.u64();
      h.entsize = r.u64();
    } else {
      h.name = r.u32();
      h.type = r.u32();
      h.flags = r.u32();
      h.addr = r.u32();
      h.offset = r.u32();
      h.size = r.u32();
      h.link = r.u32();
      h.info = r.u32();
      h.align = r.u32();
      h.entsize = r.u32();
    }
  }

  auto section_bytes = [&](const RawShdr& h) -> std::vector<std::uint8_t> {
    if (h.type == kShtNobits) return std::vector<std::uint8_t>(h.size, 0);
    if (h.offset + h.size > bytes.size()) throw ParseError("section extends past end of file");
    return std::vector<std::uint8_t>(bytes.begin() + static_cast<std::ptrdiff_t>(h.offset),
                                     bytes.begin() + static_cast<std::ptrdiff_t>(h.offset + h.size));
  };

  const std::vector<std::uint8_t> shstrtab = section_bytes(shdrs[shstrndx]);
  std::vector<std::string> names(shnum);
  for (std::uint16_t i = 0; i < shnum; ++i)
    names[i] = i == 0 ? std::string() : name_from(shstrtab, shdrs[i].name);

  for (std::uint16_t i = 1; i < shnum; ++i) {
    const RawShdr& h = shdrs[i];
    Section s;
    s.name = names[i];
    s.type = h.type;
    s.flags = h.flags;
    s.addr = h.addr;
    s.align = h.align;
    s.entsize = h.entsize;
    if (h.link != 0 && h.link < shnum) s.link = names[h.link];
    s.data = section_bytes(h);
    img.sections.push_back(std::move(s));
  }

  // Decode symbol tables.
  auto find = [&](const char* n) -> const Section* {
    for (const auto& s : img.sections)
      if (s.name == n) return &s;
    return nullptr;
  };
  if (const Section* symtab = find(".symtab")) {
    const Section* strtab = find(".strtab");
    if (strtab == nullptr) throw ParseError(".symtab without .strtab");
    img.symbols = parse_symbols(symtab->data, strtab->data, is64bit, names);
  }
  if (const Section* dynsym = find(".dynsym")) {
    const Section* dynstr = find(".dynstr");
    if (dynstr == nullptr) throw ParseError(".dynsym without .dynstr");
    img.dynsymbols = parse_symbols(dynsym->data, dynstr->data, is64bit, names);
  }

  // Reconstruct the PLT map: relocation i <-> PLT stub i (after PLT0).
  const Section* plt = find(".plt");
  const Section* rel = is64bit ? find(".rela.plt") : find(".rel.plt");
  if (plt != nullptr && rel != nullptr && !img.dynsymbols.empty()) {
    const std::size_t relent = is64bit ? kRelaSize64 : kRelSize32;
    if (rel->data.size() % relent != 0) throw ParseError("relocation section has partial entry");
    const std::size_t nrel = rel->data.size() / relent;
    const std::uint64_t stub_size = 16;
    ByteReader rr(rel->data);
    for (std::size_t i = 0; i < nrel; ++i) {
      std::uint32_t symidx;
      if (is64bit) {
        rr.skip(8);  // r_offset (GOT slot)
        const std::uint64_t info = rr.u64();
        rr.skip(8);  // addend
        symidx = static_cast<std::uint32_t>(info >> 32);
      } else {
        rr.skip(4);
        const std::uint32_t info = rr.u32();
        symidx = info >> 8;
      }
      if (symidx == 0 || symidx > img.dynsymbols.size())
        throw ParseError("PLT relocation references invalid dynsym index");
      PltEntry e;
      e.addr = plt->addr + stub_size * (1 + i);  // skip PLT0
      e.symbol = img.dynsymbols[symidx - 1].name;
      if (e.addr + stub_size > plt->end_addr())
        throw ParseError("PLT relocation count exceeds .plt size");
      img.plt.push_back(std::move(e));
    }
  }

  return img;
}

}  // namespace fsr::elf
