#include "elf/reader.hpp"

#include <string>
#include <utility>

#include "elf/types.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fsr::elf {

namespace {

using util::ByteReader;
using util::DiagCode;
using util::Diagnostic;

// A NOBITS (.bss-style) section materializes as zeroes; a crafted
// header asking for an absurd size must not be able to OOM the process.
constexpr std::uint64_t kMaxNobitsBytes = std::uint64_t{1} << 30;

struct RawShdr {
  std::uint32_t name = 0;
  std::uint32_t type = 0;
  std::uint64_t flags = 0;
  std::uint64_t addr = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t link = 0;
  std::uint32_t info = 0;
  std::uint64_t align = 0;
  std::uint64_t entsize = 0;
};

/// Shared strict-vs-lenient failure policy. fail() either throws (strict)
/// or records the diagnostic and returns so the caller can salvage.
struct Parser {
  std::span<const std::uint8_t> bytes;
  ReadOptions opts;

  /// Returns (lenient mode) or throws (strict mode). Callers must treat
  /// a return as "skip the broken structure".
  void fail(DiagCode code, std::string section, std::uint64_t offset,
            std::string message) const {
    Diagnostic d{code, std::move(section), offset, std::move(message)};
    if (opts.lenient) {
      if (opts.diags != nullptr) opts.diags->add(std::move(d));
      return;
    }
    throw ParseError(std::move(d));
  }

  /// Unsalvageable even in lenient mode (no container geometry).
  [[noreturn]] void fatal(DiagCode code, std::uint64_t offset,
                          std::string message) const {
    throw ParseError(Diagnostic{code, "", offset, std::move(message)});
  }
};

std::string name_from(const Parser& p, const std::vector<std::uint8_t>& strtab,
                      std::uint64_t off, const char* table_name) {
  if (off >= strtab.size()) {
    p.fail(DiagCode::kBadString, table_name, off, "string table offset out of range");
    return std::string();
  }
  const char* s = reinterpret_cast<const char*>(strtab.data() + off);
  std::size_t maxlen = strtab.size() - off;
  std::size_t len = 0;
  while (len < maxlen && s[len] != 0) ++len;
  if (len == maxlen) {
    p.fail(DiagCode::kBadString, table_name, off, "unterminated string table entry");
    return std::string();
  }
  return std::string(s, len);
}

std::vector<Symbol> parse_symbols(const Parser& p, const char* table_name,
                                  const std::vector<std::uint8_t>& tab,
                                  const std::vector<std::uint8_t>& strtab,
                                  bool is64bit,
                                  const std::vector<std::string>& section_names) {
  const std::size_t entsize = is64bit ? kSymSize64 : kSymSize32;
  if (tab.size() % entsize != 0)
    p.fail(DiagCode::kBadSymbols, table_name, tab.size() - tab.size() % entsize,
           "symbol table size not a multiple of entry size");
  // Lenient salvage: decode every *complete* entry.
  std::vector<Symbol> out;
  ByteReader r(tab);
  const std::size_t n = tab.size() / entsize;
  for (std::size_t i = 0; i < n; ++i) {
    Symbol s;
    std::uint16_t shndx;
    if (is64bit) {
      std::uint32_t name_off = r.u32();
      s.info = r.u8();
      r.skip(1);  // st_other
      shndx = r.u16();
      s.value = r.u64();
      s.size = r.u64();
      s.name = name_from(p, strtab, name_off, table_name);
    } else {
      std::uint32_t name_off = r.u32();
      s.value = r.u32();
      s.size = r.u32();
      s.info = r.u8();
      r.skip(1);
      shndx = r.u16();
      s.name = name_from(p, strtab, name_off, table_name);
    }
    if (i == 0) continue;  // null symbol
    if (shndx != kShnUndef && shndx < section_names.size())
      s.section = section_names[shndx];
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

Image read_elf(std::span<const std::uint8_t> bytes) {
  return read_elf(bytes, ReadOptions{});
}

Image read_elf(std::span<const std::uint8_t> bytes, const ReadOptions& opts) {
  const Parser p{bytes, opts};
  ByteReader r(bytes);
  if (r.remaining() < 16)
    p.fatal(DiagCode::kTruncated, bytes.size(), "file too small for ELF header");
  if (r.u8() != kMag0 || r.u8() != kMag1 || r.u8() != kMag2 || r.u8() != kMag3)
    p.fatal(DiagCode::kBadHeader, 0, "bad ELF magic");
  const std::uint8_t klass = r.u8();
  if (klass != kClass32 && klass != kClass64)
    p.fatal(DiagCode::kBadHeader, 4, "bad ELF class");
  const bool is64bit = klass == kClass64;
  if (r.u8() != kDataLsb)
    p.fatal(DiagCode::kBadHeader, 5, "only little-endian ELF supported");
  if (r.u8() != kEvCurrent) p.fatal(DiagCode::kBadHeader, 6, "bad ELF version");
  r.seek(16);

  const std::size_t header_size = is64bit ? 64 : 52;
  if (bytes.size() < header_size)
    p.fatal(DiagCode::kTruncated, bytes.size(), "file too small for ELF header");

  Image img;
  const std::uint16_t etype = r.u16();
  const std::uint16_t emach = r.u16();
  if (etype == kEtExec)
    img.kind = BinaryKind::kExec;
  else if (etype == kEtDyn)
    img.kind = BinaryKind::kPie;
  else
    p.fatal(DiagCode::kBadHeader, 16, "unsupported e_type " + std::to_string(etype));
  if (emach == kEmX8664 && is64bit)
    img.machine = Machine::kX8664;
  else if (emach == kEmAarch64 && is64bit)
    img.machine = Machine::kArm64;
  else if (emach == kEm386 && !is64bit)
    img.machine = Machine::kX86;
  else
    p.fatal(DiagCode::kBadHeader, 18, "unsupported e_machine/class combination");
  r.skip(4);  // e_version

  std::uint64_t shoff;
  if (is64bit) {
    img.entry = r.u64();
    r.skip(8);  // e_phoff
    shoff = r.u64();
  } else {
    img.entry = r.u32();
    r.skip(4);
    shoff = r.u32();
  }
  r.skip(4);  // e_flags
  r.skip(2);  // e_ehsize
  r.skip(2);  // e_phentsize
  r.skip(2);  // e_phnum
  std::uint16_t shentsize = r.u16();
  std::uint16_t shnum = r.u16();
  std::uint16_t shstrndx = r.u16();

  const std::size_t want_shentsize = is64bit ? kShdrSize64 : kShdrSize32;
  if (shentsize != want_shentsize) {
    p.fail(DiagCode::kBadHeader, "", is64bit ? 58u : 46u,
           "unexpected section header entry size " + std::to_string(shentsize));
    shentsize = static_cast<std::uint16_t>(want_shentsize);  // lenient: assume native
  }

  // Section headers. The bound check is overflow-safe: `shoff +
  // shnum * shentsize` on crafted 64-bit values could wrap past the
  // file size, so compare against the remaining bytes instead.
  if (shnum != 0 && (shoff > bytes.size() ||
                     static_cast<std::uint64_t>(shnum) * shentsize >
                         bytes.size() - shoff)) {
    const std::uint64_t fit =
        shoff <= bytes.size() ? (bytes.size() - shoff) / shentsize : 0;
    p.fail(DiagCode::kSectionBounds, "", shoff,
           "section header table extends past end of file (shnum " +
               std::to_string(shnum) + ", " + std::to_string(fit) + " fit)");
    shnum = static_cast<std::uint16_t>(fit);  // lenient: keep the headers that fit
  }
  if (shstrndx >= shnum) {
    if (!(shstrndx == 0 && shnum == 0))
      p.fail(DiagCode::kBadHeader, "", is64bit ? 62u : 50u, "e_shstrndx out of range");
    shstrndx = 0;  // lenient: section names unavailable
  }

  std::vector<RawShdr> shdrs(shnum);
  for (std::uint16_t i = 0; i < shnum; ++i) {
    r.seek(shoff + static_cast<std::uint64_t>(i) * shentsize);
    RawShdr& h = shdrs[i];
    if (is64bit) {
      h.name = r.u32();
      h.type = r.u32();
      h.flags = r.u64();
      h.addr = r.u64();
      h.offset = r.u64();
      h.size = r.u64();
      h.link = r.u32();
      h.info = r.u32();
      h.align = r.u64();
      h.entsize = r.u64();
    } else {
      h.name = r.u32();
      h.type = r.u32();
      h.flags = r.u32();
      h.addr = r.u32();
      h.offset = r.u32();
      h.size = r.u32();
      h.link = r.u32();
      h.info = r.u32();
      h.align = r.u32();
      h.entsize = r.u32();
    }
  }

  // Overflow-safe section extraction: `h.offset + h.size > size` wraps
  // for crafted 64-bit values and would admit out-of-range sections.
  auto section_bytes = [&](const RawShdr& h,
                           const std::string& name) -> std::vector<std::uint8_t> {
    if (h.type == kShtNobits) {
      if (h.size > kMaxNobitsBytes) {
        p.fail(DiagCode::kSectionBounds, name, h.offset,
               "NOBITS section size " + std::to_string(h.size) + " is implausible");
        return {};
      }
      return std::vector<std::uint8_t>(h.size, 0);
    }
    if (h.offset > bytes.size() || h.size > bytes.size() - h.offset) {
      p.fail(DiagCode::kSectionBounds, name, h.offset,
             "section extends past end of file");
      return {};
    }
    return std::vector<std::uint8_t>(bytes.begin() + static_cast<std::ptrdiff_t>(h.offset),
                                     bytes.begin() + static_cast<std::ptrdiff_t>(h.offset + h.size));
  };

  std::vector<std::uint8_t> shstrtab;
  if (shstrndx != 0) shstrtab = section_bytes(shdrs[shstrndx], ".shstrtab");
  std::vector<std::string> names(shnum);
  for (std::uint16_t i = 1; i < shnum; ++i)
    names[i] = name_from(p, shstrtab, shdrs[i].name, ".shstrtab");

  for (std::uint16_t i = 1; i < shnum; ++i) {
    const RawShdr& h = shdrs[i];
    Section s;
    s.name = names[i];
    s.type = h.type;
    s.flags = h.flags;
    s.addr = h.addr;
    s.align = h.align;
    s.entsize = h.entsize;
    if (h.link != 0 && h.link < shnum) s.link = names[h.link];
    s.data = section_bytes(h, s.name);
    img.sections.push_back(std::move(s));
  }

  // Decode symbol tables.
  auto find = [&](const char* n) -> const Section* {
    for (const auto& s : img.sections)
      if (s.name == n) return &s;
    return nullptr;
  };
  if (const Section* symtab = find(".symtab")) {
    const Section* strtab = find(".strtab");
    if (strtab == nullptr)
      p.fail(DiagCode::kBadSymbols, ".symtab", 0, ".symtab without .strtab");
    else
      img.symbols = parse_symbols(p, ".symtab", symtab->data, strtab->data, is64bit, names);
  }
  if (const Section* dynsym = find(".dynsym")) {
    const Section* dynstr = find(".dynstr");
    if (dynstr == nullptr)
      p.fail(DiagCode::kBadSymbols, ".dynsym", 0, ".dynsym without .dynstr");
    else
      img.dynsymbols = parse_symbols(p, ".dynsym", dynsym->data, dynstr->data, is64bit, names);
  }

  // Reconstruct the PLT map: relocation i <-> PLT stub i (after PLT0).
  const Section* plt = find(".plt");
  const Section* rel = is64bit ? find(".rela.plt") : find(".rel.plt");
  if (plt != nullptr && rel != nullptr && !img.dynsymbols.empty()) {
    const std::size_t relent = is64bit ? kRelaSize64 : kRelSize32;
    if (rel->data.size() % relent != 0)
      p.fail(DiagCode::kBadPlt, rel->name, rel->data.size() - rel->data.size() % relent,
             "relocation section has partial entry");
    const std::size_t nrel = rel->data.size() / relent;  // complete entries only
    const std::uint64_t stub_size = 16;
    // Stub capacity from the section size, not from `addr + i * 16 >
    // end_addr()` — the latter wraps for hostile section addresses.
    const std::size_t max_stubs = plt->data.size() / stub_size;
    ByteReader rr(rel->data);
    for (std::size_t i = 0; i < nrel; ++i) {
      std::uint32_t symidx;
      if (is64bit) {
        rr.skip(8);  // r_offset (GOT slot)
        const std::uint64_t info = rr.u64();
        rr.skip(8);  // addend
        symidx = static_cast<std::uint32_t>(info >> 32);
      } else {
        rr.skip(4);
        const std::uint32_t info = rr.u32();
        symidx = info >> 8;
      }
      if (symidx == 0 || symidx > img.dynsymbols.size()) {
        p.fail(DiagCode::kBadPlt, rel->name, i * relent,
               "PLT relocation references invalid dynsym index");
        break;  // lenient: keep the entries resolved so far
      }
      if (1 + i >= max_stubs) {
        p.fail(DiagCode::kBadPlt, plt->name, i * relent,
               "PLT relocation count exceeds .plt size");
        break;
      }
      PltEntry e;
      e.addr = plt->addr + stub_size * (1 + i);  // skip PLT0
      e.symbol = img.dynsymbols[symidx - 1].name;
      img.plt.push_back(std::move(e));
    }
  }

  return img;
}

}  // namespace fsr::elf
