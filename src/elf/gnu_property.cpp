#include "elf/gnu_property.hpp"

#include "elf/types.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fsr::elf {

namespace {

constexpr std::uint32_t kNtGnuPropertyType0 = 5;
constexpr std::uint32_t kPropX86Feature1And = 0xc0000002;
constexpr std::uint32_t kPropAarch64Feature1And = 0xc0000000;

std::uint32_t property_type(Machine machine) {
  return machine == Machine::kArm64 ? kPropAarch64Feature1And : kPropX86Feature1And;
}

}  // namespace

std::vector<std::uint8_t> build_gnu_property(Machine machine, std::uint32_t feature_bits) {
  util::ByteWriter w;
  w.u32(4);                    // namesz ("GNU\0")
  const std::size_t descsz_at = w.size();
  w.u32(0);                    // descsz (patched)
  w.u32(kNtGnuPropertyType0);  // type
  w.cstring("GNU");
  w.align(is64(machine) ? 8 : 4);

  const std::size_t desc_start = w.size();
  w.u32(property_type(machine));
  w.u32(4);  // pr_datasz
  w.u32(feature_bits);
  w.align(is64(machine) ? 8 : 4);
  w.patch_u32(descsz_at, static_cast<std::uint32_t>(w.size() - desc_start));
  return w.take();
}

std::optional<std::uint32_t> parse_gnu_property(std::span<const std::uint8_t> data,
                                                Machine machine,
                                                util::Diagnostics* diags) {
  util::ByteReader r(data);
  const std::size_t align = is64(machine) ? 8 : 4;
  auto seek_aligned = [&](std::size_t p) {
    p = (p + align - 1) / align * align;
    r.seek(p > data.size() ? data.size() : p);
  };
  auto fail = [&](util::DiagCode code, std::uint64_t offset, std::string msg) {
    // Strict: throw. Lenient: record and stop scanning — notes after a
    // malformed one are unreachable anyway (sizes chain the walk).
    if (diags == nullptr)
      throw ParseError(util::Diagnostic{code, ".note.gnu.property", offset,
                                        std::move(msg)});
    diags->add(code, ".note.gnu.property", offset, std::move(msg));
  };
  while (r.remaining() >= 12) {
    const std::uint64_t note_off = r.pos();
    const std::uint32_t namesz = r.u32();
    const std::uint32_t descsz = r.u32();
    const std::uint32_t type = r.u32();
    if (namesz > r.remaining()) {
      fail(util::DiagCode::kBadNote, note_off, "note name overruns section");
      return std::nullopt;
    }
    const std::vector<std::uint8_t> name = r.bytes(namesz);
    seek_aligned(r.pos());
    if (descsz > r.remaining()) {
      fail(util::DiagCode::kBadNote, note_off, "note desc overruns section");
      return std::nullopt;
    }
    const std::size_t desc_end = r.pos() + descsz;

    const bool is_gnu = namesz == 4 && name[0] == 'G' && name[1] == 'N' &&
                        name[2] == 'U' && name[3] == 0;
    if (is_gnu && type == kNtGnuPropertyType0) {
      // Walk the property array.
      while (r.pos() + 8 <= desc_end) {
        const std::uint64_t prop_off = r.pos();
        const std::uint32_t pr_type = r.u32();
        const std::uint32_t pr_datasz = r.u32();
        // Non-wrapping form of `r.pos() + pr_datasz > desc_end`.
        if (pr_datasz > desc_end - r.pos()) {
          fail(util::DiagCode::kBadNote, prop_off, "property overruns note");
          return std::nullopt;
        }
        if (pr_type == property_type(machine) && pr_datasz >= 4) return r.u32();
        seek_aligned(r.pos() + pr_datasz);
      }
    }
    seek_aligned(desc_end);
  }
  return std::nullopt;
}

std::optional<std::uint32_t> feature_bits(const Image& image) {
  const Section* note = image.find_section(".note.gnu.property");
  if (note == nullptr || note->data.empty()) return std::nullopt;
  return parse_gnu_property(note->data, image.machine);
}

bool has_branch_tracking(const Image& image) {
  const auto bits = feature_bits(image);
  if (!bits.has_value()) return false;
  const std::uint32_t want =
      image.machine == Machine::kArm64 ? kFeatureArmBti : kFeatureX86Ibt;
  return (*bits & want) != 0;
}

}  // namespace fsr::elf
