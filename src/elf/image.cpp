#include "elf/image.hpp"

#include <algorithm>

#include "elf/types.hpp"
#include "util/error.hpp"

namespace fsr::elf {

std::uint64_t default_base(Machine m, BinaryKind k) {
  if (k == BinaryKind::kPie) return 0x1000;  // small nonzero link base
  return m == Machine::kX86 ? 0x8048000ULL : 0x400000ULL;
}

bool Symbol::is_function() const { return st_type(info) == kSttFunc; }
bool Symbol::is_global() const { return st_bind(info) == kStbGlobal; }

const Section* Image::find_section(std::string_view name) const {
  for (const auto& s : sections)
    if (s.name == name) return &s;
  return nullptr;
}

Section* Image::find_section(std::string_view name) {
  for (auto& s : sections)
    if (s.name == name) return &s;
  return nullptr;
}

const Section& Image::text() const {
  const Section* s = find_section(".text");
  if (s == nullptr) throw ParseError("binary has no .text section");
  return *s;
}

std::optional<std::string> Image::plt_symbol_at(std::uint64_t va) const {
  for (const auto& e : plt)
    if (e.addr == va) return e.symbol;
  return std::nullopt;
}

std::vector<Symbol> Image::function_symbols() const {
  std::vector<Symbol> out;
  std::copy_if(symbols.begin(), symbols.end(), std::back_inserter(out),
               [](const Symbol& s) { return s.is_function(); });
  std::sort(out.begin(), out.end(),
            [](const Symbol& a, const Symbol& b) { return a.value < b.value; });
  return out;
}

void Image::strip() {
  symbols.clear();
  std::erase_if(sections, [](const Section& s) {
    return s.name == ".symtab" || s.name == ".strtab";
  });
}

}  // namespace fsr::elf
