#include "elf/writer.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "elf/types.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fsr::elf {

namespace {

using util::ByteWriter;

/// Builds a string table section (.strtab/.dynstr/.shstrtab): interned
/// strings, offset 0 reserved for the empty string.
class StringTable {
public:
  StringTable() { blob_.push_back(0); }

  std::uint32_t intern(const std::string& s) {
    if (s.empty()) return 0;
    auto it = offsets_.find(s);
    if (it != offsets_.end()) return it->second;
    auto off = static_cast<std::uint32_t>(blob_.size());
    blob_.insert(blob_.end(), s.begin(), s.end());
    blob_.push_back(0);
    offsets_.emplace(s, off);
    return off;
  }

  [[nodiscard]] const std::vector<std::uint8_t>& blob() const { return blob_; }

private:
  std::vector<std::uint8_t> blob_;
  std::map<std::string, std::uint32_t> offsets_;
};

/// Serialize a symbol table. Locals must precede globals per the ELF
/// spec (sh_info = index of first global), so sort by binding first.
std::vector<std::uint8_t> build_symtab(const std::vector<Symbol>& symbols,
                                       StringTable& strtab, bool is64bit,
                                       const std::map<std::string, std::uint16_t>& shndx,
                                       std::uint32_t& first_global_out) {
  std::vector<Symbol> sorted = symbols;
  std::stable_sort(sorted.begin(), sorted.end(), [](const Symbol& a, const Symbol& b) {
    return st_bind(a.info) < st_bind(b.info);
  });
  first_global_out = 1;
  for (const auto& s : sorted) {
    if (st_bind(s.info) == kStbLocal) ++first_global_out;
  }

  ByteWriter w;
  // Null symbol (index 0).
  w.fill(is64bit ? kSymSize64 : kSymSize32, 0);
  for (const auto& s : sorted) {
    std::uint32_t name_off = strtab.intern(s.name);
    std::uint16_t ndx = kShnUndef;
    if (!s.section.empty()) {
      auto it = shndx.find(s.section);
      if (it == shndx.end())
        throw EncodeError("symbol '" + s.name + "' references unknown section " + s.section);
      ndx = it->second;
    }
    if (is64bit) {
      w.u32(name_off);
      w.u8(s.info);
      w.u8(0);  // st_other
      w.u16(ndx);
      w.u64(s.value);
      w.u64(s.size);
    } else {
      w.u32(name_off);
      w.u32(static_cast<std::uint32_t>(s.value));
      w.u32(static_cast<std::uint32_t>(s.size));
      w.u8(s.info);
      w.u8(0);
      w.u16(ndx);
    }
  }
  return w.take();
}

struct SectionRecord {
  Section sec;
  std::uint32_t name_off = 0;
  std::uint64_t file_off = 0;
  std::uint32_t link_idx = 0;
  std::uint32_t info = 0;
};

}  // namespace

std::vector<std::uint8_t> write_elf(const Image& image) {
  const bool is64bit = is64(image.machine);

  // Work on a copy of the section list: synthesized tables replace any
  // placeholder sections of the same name.
  std::vector<Section> secs;
  for (const auto& s : image.sections) {
    if (s.name == ".symtab" || s.name == ".strtab" || s.name == ".dynsym" ||
        s.name == ".dynstr" || s.name == ".rela.plt" || s.name == ".rel.plt" ||
        s.name == ".shstrtab")
      continue;
    secs.push_back(s);
  }

  // --- Synthesize dynamic symbol table + PLT relocations -------------
  StringTable dynstr;
  std::uint32_t dynsym_first_global = 1;
  if (!image.dynsymbols.empty() || !image.plt.empty()) {
    // Map section name -> header index. Headers: [0]=null, then secs in
    // order, then the synthesized ones appended below. We only need
    // indices for sections already in `secs`, which is where all
    // symbol-defining sections live.
    std::map<std::string, std::uint16_t> shndx;
    for (std::size_t i = 0; i < secs.size(); ++i)
      shndx[secs[i].name] = static_cast<std::uint16_t>(i + 1);

    std::uint32_t& first_global = dynsym_first_global;
    Section dynsym;
    dynsym.name = ".dynsym";
    dynsym.type = kShtDynsym;
    dynsym.flags = kShfAlloc;
    dynsym.align = is64bit ? 8 : 4;
    dynsym.entsize = is64bit ? kSymSize64 : kSymSize32;
    dynsym.link = ".dynstr";
    dynsym.data = build_symtab(image.dynsymbols, dynstr, is64bit, shndx, first_global);

    // .rel(a).plt: relocation i covers the GOT slot of PLT stub i.
    const Section* gotplt = nullptr;
    for (const auto& s : secs)
      if (s.name == ".got.plt") gotplt = &s;
    if (!image.plt.empty() && gotplt == nullptr)
      throw EncodeError("PLT entries present but no .got.plt section");

    // dynsym index by name (after local-first sorting, order = null +
    // locals + globals; rebuild the same ordering here).
    std::vector<Symbol> sorted = image.dynsymbols;
    std::stable_sort(sorted.begin(), sorted.end(), [](const Symbol& a, const Symbol& b) {
      return st_bind(a.info) < st_bind(b.info);
    });
    std::map<std::string, std::uint32_t> dynidx;
    for (std::size_t i = 0; i < sorted.size(); ++i)
      dynidx[sorted[i].name] = static_cast<std::uint32_t>(i + 1);

    ByteWriter relw;
    const std::uint64_t slot = is64bit ? 8 : 4;
    for (std::size_t i = 0; i < image.plt.size(); ++i) {
      auto it = dynidx.find(image.plt[i].symbol);
      if (it == dynidx.end())
        throw EncodeError("PLT symbol '" + image.plt[i].symbol + "' not in dynsym");
      // The first 3 GOT slots are reserved (link_map, resolver, ...).
      const std::uint64_t got_slot = gotplt->addr + slot * (3 + i);
      if (is64bit) {
        const std::uint32_t slot_type =
            image.machine == Machine::kArm64 ? kRAarch64JmpSlot : kRX8664JmpSlot;
        relw.u64(got_slot);
        relw.u64((static_cast<std::uint64_t>(it->second) << 32) | slot_type);
        relw.u64(0);  // addend
      } else {
        relw.u32(static_cast<std::uint32_t>(got_slot));
        relw.u32((it->second << 8) | kR386JmpSlot);
      }
    }

    Section dynstr_sec;
    dynstr_sec.name = ".dynstr";
    dynstr_sec.type = kShtStrtab;
    dynstr_sec.flags = kShfAlloc;
    dynstr_sec.align = 1;
    dynstr_sec.data = dynstr.blob();

    Section rel;
    rel.name = is64bit ? ".rela.plt" : ".rel.plt";
    rel.type = is64bit ? kShtRela : kShtRel;
    rel.flags = kShfAlloc;
    rel.align = is64bit ? 8 : 4;
    rel.entsize = is64bit ? kRelaSize64 : kRelSize32;
    rel.link = ".dynsym";
    rel.data = relw.take();

    secs.push_back(std::move(dynsym));
    secs.push_back(std::move(dynstr_sec));
    if (!image.plt.empty()) secs.push_back(std::move(rel));
  }

  // --- Synthesize static symbol table ---------------------------------
  std::uint32_t symtab_first_global = 1;
  if (!image.symbols.empty()) {
    std::map<std::string, std::uint16_t> shndx;
    for (std::size_t i = 0; i < secs.size(); ++i)
      shndx[secs[i].name] = static_cast<std::uint16_t>(i + 1);

    StringTable strtab;
    Section symtab;
    symtab.name = ".symtab";
    symtab.type = kShtSymtab;
    symtab.align = is64bit ? 8 : 4;
    symtab.entsize = is64bit ? kSymSize64 : kSymSize32;
    symtab.link = ".strtab";
    symtab.data = build_symtab(image.symbols, strtab, is64bit, shndx, symtab_first_global);

    Section strtab_sec;
    strtab_sec.name = ".strtab";
    strtab_sec.type = kShtStrtab;
    strtab_sec.align = 1;
    strtab_sec.data = strtab.blob();

    secs.push_back(std::move(symtab));
    secs.push_back(std::move(strtab_sec));
  }

  // --- Section header string table ------------------------------------
  StringTable shstr;
  for (const auto& s : secs) shstr.intern(s.name);
  shstr.intern(".shstrtab");
  Section shstrtab;
  shstrtab.name = ".shstrtab";
  shstrtab.type = kShtStrtab;
  shstrtab.align = 1;
  shstrtab.data = shstr.blob();
  secs.push_back(std::move(shstrtab));

  // --- Lay out file offsets --------------------------------------------
  const std::size_t ehdr_size = is64bit ? kEhdrSize64 : kEhdrSize32;
  const std::size_t phdr_size = is64bit ? kPhdrSize64 : kPhdrSize32;
  const std::size_t shdr_size = is64bit ? kShdrSize64 : kShdrSize32;
  const unsigned phnum = 1;  // single PT_LOAD covering the file

  std::vector<SectionRecord> records;
  records.reserve(secs.size());
  std::uint64_t off = ehdr_size + phdr_size * phnum;
  for (auto& s : secs) {
    SectionRecord rec;
    const std::uint64_t align = std::max<std::uint64_t>(s.align, 1);
    // Keep file offset congruent with the virtual address for alloc
    // sections (what a loader would require); plain alignment otherwise.
    if ((s.flags & kShfAlloc) != 0 && s.addr != 0) {
      while (off % align != s.addr % align) ++off;
    } else {
      while (off % align != 0) ++off;
    }
    rec.file_off = off;
    off += s.data.size();
    rec.sec = std::move(s);
    records.push_back(std::move(rec));
  }
  const std::uint64_t shoff = (off + 7) & ~std::uint64_t{7};

  // Resolve sh_link name references to header indices.
  std::map<std::string, std::uint32_t> index_of;
  for (std::size_t i = 0; i < records.size(); ++i)
    index_of[records[i].sec.name] = static_cast<std::uint32_t>(i + 1);
  for (auto& rec : records) {
    if (!rec.sec.link.empty()) {
      auto it = index_of.find(rec.sec.link);
      if (it == index_of.end())
        throw EncodeError("section " + rec.sec.name + " links to unknown " + rec.sec.link);
      rec.link_idx = it->second;
    }
    if (rec.sec.type == kShtSymtab)
      rec.info = symtab_first_global;  // index of first non-local symbol
    else if (rec.sec.type == kShtDynsym)
      rec.info = dynsym_first_global;
    rec.name_off = shstr.intern(rec.sec.name);
  }

  // --- Emit -------------------------------------------------------------
  ByteWriter w;
  // e_ident
  w.u8(kMag0);
  w.u8(kMag1);
  w.u8(kMag2);
  w.u8(kMag3);
  w.u8(is64bit ? kClass64 : kClass32);
  w.u8(kDataLsb);
  w.u8(kEvCurrent);
  w.u8(kOsAbiSysV);
  w.fill(8, 0);
  w.u16(image.kind == BinaryKind::kExec ? kEtExec : kEtDyn);
  switch (image.machine) {
    case Machine::kX86: w.u16(kEm386); break;
    case Machine::kX8664: w.u16(kEmX8664); break;
    case Machine::kArm64: w.u16(kEmAarch64); break;
  }
  w.u32(kEvCurrent);
  if (is64bit) {
    w.u64(image.entry);
    w.u64(ehdr_size);  // e_phoff
    w.u64(shoff);
  } else {
    w.u32(static_cast<std::uint32_t>(image.entry));
    w.u32(static_cast<std::uint32_t>(ehdr_size));
    w.u32(static_cast<std::uint32_t>(shoff));
  }
  w.u32(0);  // e_flags
  w.u16(static_cast<std::uint16_t>(ehdr_size));
  w.u16(static_cast<std::uint16_t>(phdr_size));
  w.u16(phnum);
  w.u16(static_cast<std::uint16_t>(shdr_size));
  w.u16(static_cast<std::uint16_t>(records.size() + 1));
  w.u16(static_cast<std::uint16_t>(index_of[".shstrtab"]));

  // Program header: one PT_LOAD spanning the whole file image.
  std::uint64_t min_addr = UINT64_MAX, max_addr = 0;
  for (const auto& rec : records) {
    if ((rec.sec.flags & kShfAlloc) == 0) continue;
    min_addr = std::min(min_addr, rec.sec.addr);
    max_addr = std::max(max_addr, rec.sec.end_addr());
  }
  if (min_addr == UINT64_MAX) {
    min_addr = 0;
    max_addr = 0;
  }
  if (is64bit) {
    w.u32(kPtLoad);
    w.u32(kPfR | kPfX);
    w.u64(0);                       // p_offset
    w.u64(min_addr);                // p_vaddr
    w.u64(min_addr);                // p_paddr
    w.u64(off);                     // p_filesz
    w.u64(max_addr - min_addr);     // p_memsz
    w.u64(0x1000);                  // p_align
  } else {
    w.u32(kPtLoad);
    w.u32(0);                       // p_offset
    w.u32(static_cast<std::uint32_t>(min_addr));
    w.u32(static_cast<std::uint32_t>(min_addr));
    w.u32(static_cast<std::uint32_t>(off));
    w.u32(static_cast<std::uint32_t>(max_addr - min_addr));
    w.u32(kPfR | kPfX);
    w.u32(0x1000);
  }

  // Section contents.
  for (const auto& rec : records) {
    if (w.size() > rec.file_off) throw EncodeError("section layout overlap");
    w.fill(rec.file_off - w.size(), 0);
    w.bytes(rec.sec.data);
  }

  // Section header table.
  w.fill(shoff - w.size(), 0);
  // Null header.
  w.fill(shdr_size, 0);
  for (const auto& rec : records) {
    if (is64bit) {
      w.u32(rec.name_off);
      w.u32(rec.sec.type);
      w.u64(rec.sec.flags);
      w.u64(rec.sec.addr);
      w.u64(rec.file_off);
      w.u64(rec.sec.data.size());
      w.u32(rec.link_idx);
      w.u32(rec.info);
      w.u64(std::max<std::uint64_t>(rec.sec.align, 1));
      w.u64(rec.sec.entsize);
    } else {
      w.u32(rec.name_off);
      w.u32(rec.sec.type);
      w.u32(static_cast<std::uint32_t>(rec.sec.flags));
      w.u32(static_cast<std::uint32_t>(rec.sec.addr));
      w.u32(static_cast<std::uint32_t>(rec.file_off));
      w.u32(static_cast<std::uint32_t>(rec.sec.data.size()));
      w.u32(rec.link_idx);
      w.u32(rec.info);
      w.u32(static_cast<std::uint32_t>(std::max<std::uint64_t>(rec.sec.align, 1)));
      w.u32(static_cast<std::uint32_t>(rec.sec.entsize));
    }
  }

  return w.take();
}

}  // namespace fsr::elf
