// ELF on-disk constants (subset used by this project).
//
// Values follow the System V ABI / Tool Interface Standard ELF
// specification. Only the constants actually consumed by the reader,
// writer, and analyzers are defined here.
#pragma once

#include <cstdint>

namespace fsr::elf {

// e_ident indices and values.
inline constexpr std::uint8_t kMag0 = 0x7f;
inline constexpr std::uint8_t kMag1 = 'E';
inline constexpr std::uint8_t kMag2 = 'L';
inline constexpr std::uint8_t kMag3 = 'F';
inline constexpr std::uint8_t kClass32 = 1;
inline constexpr std::uint8_t kClass64 = 2;
inline constexpr std::uint8_t kDataLsb = 1;
inline constexpr std::uint8_t kEvCurrent = 1;
inline constexpr std::uint8_t kOsAbiSysV = 0;

// e_type.
inline constexpr std::uint16_t kEtExec = 2;
inline constexpr std::uint16_t kEtDyn = 3;  // PIE / shared object

// e_machine.
inline constexpr std::uint16_t kEm386 = 3;
inline constexpr std::uint16_t kEmX8664 = 62;
inline constexpr std::uint16_t kEmAarch64 = 183;

// sh_type.
inline constexpr std::uint32_t kShtNull = 0;
inline constexpr std::uint32_t kShtProgbits = 1;
inline constexpr std::uint32_t kShtSymtab = 2;
inline constexpr std::uint32_t kShtStrtab = 3;
inline constexpr std::uint32_t kShtRela = 4;
inline constexpr std::uint32_t kShtNote = 7;
inline constexpr std::uint32_t kShtNobits = 8;
inline constexpr std::uint32_t kShtRel = 9;
inline constexpr std::uint32_t kShtDynsym = 11;

// sh_flags.
inline constexpr std::uint64_t kShfWrite = 0x1;
inline constexpr std::uint64_t kShfAlloc = 0x2;
inline constexpr std::uint64_t kShfExecinstr = 0x4;

// p_type.
inline constexpr std::uint32_t kPtLoad = 1;
inline constexpr std::uint32_t kPtGnuEhFrame = 0x6474e550;

// p_flags.
inline constexpr std::uint32_t kPfX = 1;
inline constexpr std::uint32_t kPfW = 2;
inline constexpr std::uint32_t kPfR = 4;

// Symbol binding / type (st_info).
inline constexpr std::uint8_t kStbLocal = 0;
inline constexpr std::uint8_t kStbGlobal = 1;
inline constexpr std::uint8_t kSttNotype = 0;
inline constexpr std::uint8_t kSttObject = 1;
inline constexpr std::uint8_t kSttFunc = 2;
inline constexpr std::uint8_t kSttSection = 3;

inline constexpr std::uint8_t st_info(std::uint8_t bind, std::uint8_t type) {
  return static_cast<std::uint8_t>((bind << 4) | (type & 0xf));
}
inline constexpr std::uint8_t st_bind(std::uint8_t info) { return info >> 4; }
inline constexpr std::uint8_t st_type(std::uint8_t info) { return info & 0xf; }

// Relocation types used for PLT slots.
inline constexpr std::uint32_t kR386JmpSlot = 7;         // R_386_JMP_SLOT
inline constexpr std::uint32_t kRX8664JmpSlot = 7;       // R_X86_64_JUMP_SLOT
inline constexpr std::uint32_t kRAarch64JmpSlot = 1026;  // R_AARCH64_JUMP_SLOT

// Special section header index.
inline constexpr std::uint16_t kShnUndef = 0;

// Fixed header sizes.
inline constexpr std::size_t kEhdrSize64 = 64;
inline constexpr std::size_t kEhdrSize32 = 52;
inline constexpr std::size_t kShdrSize64 = 64;
inline constexpr std::size_t kShdrSize32 = 40;
inline constexpr std::size_t kPhdrSize64 = 56;
inline constexpr std::size_t kPhdrSize32 = 32;
inline constexpr std::size_t kSymSize64 = 24;
inline constexpr std::size_t kSymSize32 = 16;
inline constexpr std::size_t kRelaSize64 = 24;
inline constexpr std::size_t kRelSize32 = 8;

}  // namespace fsr::elf
