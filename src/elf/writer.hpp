// ELF serializer.
//
// Turns an Image into a valid ELF file. Symbol tables (.symtab/.strtab,
// .dynsym/.dynstr) and PLT relocations (.rela.plt / .rel.plt) are
// synthesized from the Image's structured fields so that the reader can
// reconstruct them the same way a real tool would (relocation i <->
// PLT stub i), rather than through any side channel.
#pragma once

#include <cstdint>
#include <vector>

#include "elf/image.hpp"

namespace fsr::elf {

/// Serialize the image. Requirements:
///  - section addresses must already be laid out (non-overlapping);
///  - if Image::plt is nonempty, sections ".plt" and ".got.plt" must
///    exist and .plt must hold one 16-byte stub per entry after PLT0.
/// Throws fsr::EncodeError on violations.
std::vector<std::uint8_t> write_elf(const Image& image);

}  // namespace fsr::elf
