// ELF parser.
//
// Parses an ELF file back into an Image. Symbol tables are decoded from
// .symtab/.dynsym, and the PLT map is reconstructed the way binary
// analysis tools do it: relocation i of .rel(a).plt names the dynamic
// symbol dispatched by PLT stub i (stub 0 is the shared PLT0 header).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "elf/image.hpp"

namespace fsr::elf {

/// Parse an ELF binary. Throws fsr::ParseError on malformed input.
Image read_elf(std::span<const std::uint8_t> bytes);

}  // namespace fsr::elf
