// ELF parser.
//
// Parses an ELF file back into an Image. Symbol tables are decoded from
// .symtab/.dynsym, and the PLT map is reconstructed the way binary
// analysis tools do it: relocation i of .rel(a).plt names the dynamic
// symbol dispatched by PLT stub i (stub 0 is the shared PLT0 header).
//
// Two parsing modes:
//  - strict (default): the first malformed structure throws
//    fsr::ParseError carrying a structured util::Diagnostic.
//  - lenient: pass ReadOptions{.lenient = true, .diags = &sink} to
//    salvage instead — a bad section loses its data (not the file), a
//    bad name becomes "", a malformed symbol/PLT table keeps every
//    entry decoded before the damage. Each salvage records a
//    Diagnostic. Only an unusable ELF header (magic/class/machine)
//    still throws: with no container geometry there is nothing to
//    salvage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "elf/image.hpp"
#include "util/diagnostic.hpp"

namespace fsr::elf {

struct ReadOptions {
  /// Salvage malformed structures instead of throwing.
  bool lenient = false;
  /// Where lenient mode records what it salvaged (may be null).
  util::Diagnostics* diags = nullptr;
};

/// Parse an ELF binary (strict). Throws fsr::ParseError on malformed input.
Image read_elf(std::span<const std::uint8_t> bytes);

/// Parse an ELF binary with explicit strictness.
Image read_elf(std::span<const std::uint8_t> bytes, const ReadOptions& opts);

}  // namespace fsr::elf
