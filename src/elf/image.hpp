// In-memory model of an ELF binary.
//
// Both sides of the project meet here: the corpus generator builds an
// Image and serializes it with write_elf(); the analyzers get an Image
// back from read_elf() and never touch raw file offsets again.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fsr::elf {

/// Target instruction set of the binary. kArm64 supports the paper's
/// §VI extension (ARM BTI behaves like Intel's end-branch).
enum class Machine { kX86, kX8664, kArm64 };

/// Link-time kind. PIEs use ET_DYN with low base addresses; non-PIEs
/// use ET_EXEC with a conventional fixed base.
enum class BinaryKind { kExec, kPie };

[[nodiscard]] constexpr bool is64(Machine m) { return m != Machine::kX86; }

/// Canonical image base addresses used by the corpus generator, matching
/// the defaults of GNU ld: non-PIE x86-64 at 0x400000, non-PIE x86 at
/// 0x8048000, PIEs at 0 (link-time addresses; loaders relocate).
[[nodiscard]] std::uint64_t default_base(Machine m, BinaryKind k);

/// One ELF section: name, load address, and contents.
struct Section {
  std::string name;
  std::uint32_t type = 0;      // SHT_*
  std::uint64_t flags = 0;     // SHF_*
  std::uint64_t addr = 0;      // virtual address (0 for non-alloc)
  std::uint64_t align = 1;
  std::uint64_t entsize = 0;
  std::string link;            // name of the linked section ("" if none)
  std::vector<std::uint8_t> data;

  [[nodiscard]] std::uint64_t end_addr() const { return addr + data.size(); }
  [[nodiscard]] bool contains(std::uint64_t va) const {
    return va >= addr && va < end_addr();
  }
};

/// One symbol table entry (used for both .symtab and .dynsym).
struct Symbol {
  std::string name;
  std::uint64_t value = 0;
  std::uint64_t size = 0;
  std::uint8_t info = 0;       // st_info(bind, type)
  std::string section;         // name of defining section ("" = SHN_UNDEF)

  [[nodiscard]] bool is_function() const;
  [[nodiscard]] bool is_global() const;
};

/// A resolved Procedure Linkage Table entry: the virtual address of the
/// PLT stub and the name of the dynamic symbol it dispatches to. The
/// reader reconstructs these from .plt + .rel(a).plt + .dynsym; they are
/// what FILTERENDBR consults to recognize indirect-return callees.
struct PltEntry {
  std::uint64_t addr = 0;
  std::string symbol;
};

/// Whole-binary model.
class Image {
public:
  Machine machine = Machine::kX8664;
  BinaryKind kind = BinaryKind::kPie;
  std::uint64_t entry = 0;

  std::vector<Section> sections;
  std::vector<Symbol> symbols;      // .symtab contents (empty if stripped)
  std::vector<Symbol> dynsymbols;   // .dynsym contents
  std::vector<PltEntry> plt;        // resolved PLT map

  /// Find a section by name; nullptr if absent.
  [[nodiscard]] const Section* find_section(std::string_view name) const;
  [[nodiscard]] Section* find_section(std::string_view name);

  /// The executable .text section; throws fsr::ParseError if missing.
  [[nodiscard]] const Section& text() const;

  /// PLT stub address -> symbol name; nullopt when va is not a PLT stub.
  [[nodiscard]] std::optional<std::string> plt_symbol_at(std::uint64_t va) const;

  /// Function symbols from .symtab (ground-truth side; empty if stripped).
  [[nodiscard]] std::vector<Symbol> function_symbols() const;

  /// Remove .symtab/.strtab, emulating `strip`. Dynamic symbol
  /// information (.dynsym/.dynstr/.rel(a).plt) survives, as it does for
  /// real stripped binaries.
  void strip();
};

}  // namespace fsr::elf
