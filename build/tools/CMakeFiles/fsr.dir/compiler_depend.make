# Empty compiler generated dependencies file for fsr.
# This may be replaced when dependencies are built.
