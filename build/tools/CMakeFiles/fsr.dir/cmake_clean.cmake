file(REMOVE_RECURSE
  "CMakeFiles/fsr.dir/fsr.cpp.o"
  "CMakeFiles/fsr.dir/fsr.cpp.o.d"
  "fsr"
  "fsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
