file(REMOVE_RECURSE
  "CMakeFiles/corpus_export.dir/corpus_export.cpp.o"
  "CMakeFiles/corpus_export.dir/corpus_export.cpp.o.d"
  "corpus_export"
  "corpus_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
