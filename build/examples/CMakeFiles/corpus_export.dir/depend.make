# Empty dependencies file for corpus_export.
# This may be replaced when dependencies are built.
