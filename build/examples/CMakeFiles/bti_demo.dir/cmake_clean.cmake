file(REMOVE_RECURSE
  "CMakeFiles/bti_demo.dir/bti_demo.cpp.o"
  "CMakeFiles/bti_demo.dir/bti_demo.cpp.o.d"
  "bti_demo"
  "bti_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bti_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
