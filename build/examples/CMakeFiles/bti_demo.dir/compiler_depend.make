# Empty compiler generated dependencies file for bti_demo.
# This may be replaced when dependencies are built.
