# Empty dependencies file for endbr_patterns.
# This may be replaced when dependencies are built.
