file(REMOVE_RECURSE
  "CMakeFiles/endbr_patterns.dir/endbr_patterns.cpp.o"
  "CMakeFiles/endbr_patterns.dir/endbr_patterns.cpp.o.d"
  "endbr_patterns"
  "endbr_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endbr_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
