# Empty dependencies file for tool_shootout.
# This may be replaced when dependencies are built.
