file(REMOVE_RECURSE
  "CMakeFiles/tool_shootout.dir/tool_shootout.cpp.o"
  "CMakeFiles/tool_shootout.dir/tool_shootout.cpp.o.d"
  "tool_shootout"
  "tool_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
