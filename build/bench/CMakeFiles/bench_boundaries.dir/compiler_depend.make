# Empty compiler generated dependencies file for bench_boundaries.
# This may be replaced when dependencies are built.
