file(REMOVE_RECURSE
  "CMakeFiles/bench_bti.dir/bench_bti.cpp.o"
  "CMakeFiles/bench_bti.dir/bench_bti.cpp.o.d"
  "bench_bti"
  "bench_bti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
