# Empty dependencies file for bench_bti.
# This may be replaced when dependencies are built.
