# Empty dependencies file for bench_opt_levels.
# This may be replaced when dependencies are built.
