file(REMOVE_RECURSE
  "CMakeFiles/bench_byteweight.dir/bench_byteweight.cpp.o"
  "CMakeFiles/bench_byteweight.dir/bench_byteweight.cpp.o.d"
  "bench_byteweight"
  "bench_byteweight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_byteweight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
