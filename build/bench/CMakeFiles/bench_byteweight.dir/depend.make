# Empty dependencies file for bench_byteweight.
# This may be replaced when dependencies are built.
