file(REMOVE_RECURSE
  "librepro_eh.a"
)
