file(REMOVE_RECURSE
  "CMakeFiles/repro_eh.dir/eh_frame.cpp.o"
  "CMakeFiles/repro_eh.dir/eh_frame.cpp.o.d"
  "CMakeFiles/repro_eh.dir/eh_frame_hdr.cpp.o"
  "CMakeFiles/repro_eh.dir/eh_frame_hdr.cpp.o.d"
  "CMakeFiles/repro_eh.dir/encodings.cpp.o"
  "CMakeFiles/repro_eh.dir/encodings.cpp.o.d"
  "CMakeFiles/repro_eh.dir/lsda.cpp.o"
  "CMakeFiles/repro_eh.dir/lsda.cpp.o.d"
  "librepro_eh.a"
  "librepro_eh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_eh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
