# Empty dependencies file for repro_eh.
# This may be replaced when dependencies are built.
