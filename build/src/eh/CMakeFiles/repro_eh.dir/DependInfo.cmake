
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eh/eh_frame.cpp" "src/eh/CMakeFiles/repro_eh.dir/eh_frame.cpp.o" "gcc" "src/eh/CMakeFiles/repro_eh.dir/eh_frame.cpp.o.d"
  "/root/repo/src/eh/eh_frame_hdr.cpp" "src/eh/CMakeFiles/repro_eh.dir/eh_frame_hdr.cpp.o" "gcc" "src/eh/CMakeFiles/repro_eh.dir/eh_frame_hdr.cpp.o.d"
  "/root/repo/src/eh/encodings.cpp" "src/eh/CMakeFiles/repro_eh.dir/encodings.cpp.o" "gcc" "src/eh/CMakeFiles/repro_eh.dir/encodings.cpp.o.d"
  "/root/repo/src/eh/lsda.cpp" "src/eh/CMakeFiles/repro_eh.dir/lsda.cpp.o" "gcc" "src/eh/CMakeFiles/repro_eh.dir/lsda.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
