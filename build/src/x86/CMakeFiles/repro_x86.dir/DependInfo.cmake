
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/assembler.cpp" "src/x86/CMakeFiles/repro_x86.dir/assembler.cpp.o" "gcc" "src/x86/CMakeFiles/repro_x86.dir/assembler.cpp.o.d"
  "/root/repo/src/x86/decoder.cpp" "src/x86/CMakeFiles/repro_x86.dir/decoder.cpp.o" "gcc" "src/x86/CMakeFiles/repro_x86.dir/decoder.cpp.o.d"
  "/root/repo/src/x86/format.cpp" "src/x86/CMakeFiles/repro_x86.dir/format.cpp.o" "gcc" "src/x86/CMakeFiles/repro_x86.dir/format.cpp.o.d"
  "/root/repo/src/x86/insn.cpp" "src/x86/CMakeFiles/repro_x86.dir/insn.cpp.o" "gcc" "src/x86/CMakeFiles/repro_x86.dir/insn.cpp.o.d"
  "/root/repo/src/x86/sweep.cpp" "src/x86/CMakeFiles/repro_x86.dir/sweep.cpp.o" "gcc" "src/x86/CMakeFiles/repro_x86.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
