file(REMOVE_RECURSE
  "librepro_x86.a"
)
