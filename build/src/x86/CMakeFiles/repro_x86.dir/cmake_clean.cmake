file(REMOVE_RECURSE
  "CMakeFiles/repro_x86.dir/assembler.cpp.o"
  "CMakeFiles/repro_x86.dir/assembler.cpp.o.d"
  "CMakeFiles/repro_x86.dir/decoder.cpp.o"
  "CMakeFiles/repro_x86.dir/decoder.cpp.o.d"
  "CMakeFiles/repro_x86.dir/format.cpp.o"
  "CMakeFiles/repro_x86.dir/format.cpp.o.d"
  "CMakeFiles/repro_x86.dir/insn.cpp.o"
  "CMakeFiles/repro_x86.dir/insn.cpp.o.d"
  "CMakeFiles/repro_x86.dir/sweep.cpp.o"
  "CMakeFiles/repro_x86.dir/sweep.cpp.o.d"
  "librepro_x86.a"
  "librepro_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
