# Empty dependencies file for repro_x86.
# This may be replaced when dependencies are built.
