# Empty dependencies file for repro_synth.
# This may be replaced when dependencies are built.
