file(REMOVE_RECURSE
  "librepro_synth.a"
)
