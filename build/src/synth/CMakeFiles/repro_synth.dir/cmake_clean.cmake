file(REMOVE_RECURSE
  "CMakeFiles/repro_synth.dir/codegen.cpp.o"
  "CMakeFiles/repro_synth.dir/codegen.cpp.o.d"
  "CMakeFiles/repro_synth.dir/codegen_arm64.cpp.o"
  "CMakeFiles/repro_synth.dir/codegen_arm64.cpp.o.d"
  "CMakeFiles/repro_synth.dir/corpus.cpp.o"
  "CMakeFiles/repro_synth.dir/corpus.cpp.o.d"
  "CMakeFiles/repro_synth.dir/generate.cpp.o"
  "CMakeFiles/repro_synth.dir/generate.cpp.o.d"
  "CMakeFiles/repro_synth.dir/model.cpp.o"
  "CMakeFiles/repro_synth.dir/model.cpp.o.d"
  "CMakeFiles/repro_synth.dir/profiles.cpp.o"
  "CMakeFiles/repro_synth.dir/profiles.cpp.o.d"
  "librepro_synth.a"
  "librepro_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
