
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/codegen.cpp" "src/synth/CMakeFiles/repro_synth.dir/codegen.cpp.o" "gcc" "src/synth/CMakeFiles/repro_synth.dir/codegen.cpp.o.d"
  "/root/repo/src/synth/codegen_arm64.cpp" "src/synth/CMakeFiles/repro_synth.dir/codegen_arm64.cpp.o" "gcc" "src/synth/CMakeFiles/repro_synth.dir/codegen_arm64.cpp.o.d"
  "/root/repo/src/synth/corpus.cpp" "src/synth/CMakeFiles/repro_synth.dir/corpus.cpp.o" "gcc" "src/synth/CMakeFiles/repro_synth.dir/corpus.cpp.o.d"
  "/root/repo/src/synth/generate.cpp" "src/synth/CMakeFiles/repro_synth.dir/generate.cpp.o" "gcc" "src/synth/CMakeFiles/repro_synth.dir/generate.cpp.o.d"
  "/root/repo/src/synth/model.cpp" "src/synth/CMakeFiles/repro_synth.dir/model.cpp.o" "gcc" "src/synth/CMakeFiles/repro_synth.dir/model.cpp.o.d"
  "/root/repo/src/synth/profiles.cpp" "src/synth/CMakeFiles/repro_synth.dir/profiles.cpp.o" "gcc" "src/synth/CMakeFiles/repro_synth.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/repro_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/repro_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/arm64/CMakeFiles/repro_arm64.dir/DependInfo.cmake"
  "/root/repo/build/src/eh/CMakeFiles/repro_eh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
