file(REMOVE_RECURSE
  "librepro_baselines.a"
)
