# Empty compiler generated dependencies file for repro_baselines.
# This may be replaced when dependencies are built.
