file(REMOVE_RECURSE
  "CMakeFiles/repro_baselines.dir/byteweight.cpp.o"
  "CMakeFiles/repro_baselines.dir/byteweight.cpp.o.d"
  "CMakeFiles/repro_baselines.dir/common.cpp.o"
  "CMakeFiles/repro_baselines.dir/common.cpp.o.d"
  "CMakeFiles/repro_baselines.dir/fetch_like.cpp.o"
  "CMakeFiles/repro_baselines.dir/fetch_like.cpp.o.d"
  "CMakeFiles/repro_baselines.dir/ghidra_like.cpp.o"
  "CMakeFiles/repro_baselines.dir/ghidra_like.cpp.o.d"
  "CMakeFiles/repro_baselines.dir/ida_like.cpp.o"
  "CMakeFiles/repro_baselines.dir/ida_like.cpp.o.d"
  "librepro_baselines.a"
  "librepro_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
