
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/byteweight.cpp" "src/baselines/CMakeFiles/repro_baselines.dir/byteweight.cpp.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/byteweight.cpp.o.d"
  "/root/repo/src/baselines/common.cpp" "src/baselines/CMakeFiles/repro_baselines.dir/common.cpp.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/common.cpp.o.d"
  "/root/repo/src/baselines/fetch_like.cpp" "src/baselines/CMakeFiles/repro_baselines.dir/fetch_like.cpp.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/fetch_like.cpp.o.d"
  "/root/repo/src/baselines/ghidra_like.cpp" "src/baselines/CMakeFiles/repro_baselines.dir/ghidra_like.cpp.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/ghidra_like.cpp.o.d"
  "/root/repo/src/baselines/ida_like.cpp" "src/baselines/CMakeFiles/repro_baselines.dir/ida_like.cpp.o" "gcc" "src/baselines/CMakeFiles/repro_baselines.dir/ida_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/repro_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/repro_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/eh/CMakeFiles/repro_eh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
