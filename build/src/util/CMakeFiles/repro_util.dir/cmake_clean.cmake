file(REMOVE_RECURSE
  "CMakeFiles/repro_util.dir/bytes.cpp.o"
  "CMakeFiles/repro_util.dir/bytes.cpp.o.d"
  "CMakeFiles/repro_util.dir/leb128.cpp.o"
  "CMakeFiles/repro_util.dir/leb128.cpp.o.d"
  "CMakeFiles/repro_util.dir/rng.cpp.o"
  "CMakeFiles/repro_util.dir/rng.cpp.o.d"
  "CMakeFiles/repro_util.dir/stopwatch.cpp.o"
  "CMakeFiles/repro_util.dir/stopwatch.cpp.o.d"
  "CMakeFiles/repro_util.dir/str.cpp.o"
  "CMakeFiles/repro_util.dir/str.cpp.o.d"
  "librepro_util.a"
  "librepro_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
