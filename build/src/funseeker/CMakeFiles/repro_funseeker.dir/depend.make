# Empty dependencies file for repro_funseeker.
# This may be replaced when dependencies are built.
