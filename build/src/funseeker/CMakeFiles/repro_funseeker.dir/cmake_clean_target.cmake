file(REMOVE_RECURSE
  "librepro_funseeker.a"
)
