file(REMOVE_RECURSE
  "CMakeFiles/repro_funseeker.dir/disassemble.cpp.o"
  "CMakeFiles/repro_funseeker.dir/disassemble.cpp.o.d"
  "CMakeFiles/repro_funseeker.dir/filter_endbr.cpp.o"
  "CMakeFiles/repro_funseeker.dir/filter_endbr.cpp.o.d"
  "CMakeFiles/repro_funseeker.dir/funseeker.cpp.o"
  "CMakeFiles/repro_funseeker.dir/funseeker.cpp.o.d"
  "CMakeFiles/repro_funseeker.dir/recursive.cpp.o"
  "CMakeFiles/repro_funseeker.dir/recursive.cpp.o.d"
  "CMakeFiles/repro_funseeker.dir/tail_call.cpp.o"
  "CMakeFiles/repro_funseeker.dir/tail_call.cpp.o.d"
  "librepro_funseeker.a"
  "librepro_funseeker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_funseeker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
