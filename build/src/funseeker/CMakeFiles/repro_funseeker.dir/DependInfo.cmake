
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/funseeker/disassemble.cpp" "src/funseeker/CMakeFiles/repro_funseeker.dir/disassemble.cpp.o" "gcc" "src/funseeker/CMakeFiles/repro_funseeker.dir/disassemble.cpp.o.d"
  "/root/repo/src/funseeker/filter_endbr.cpp" "src/funseeker/CMakeFiles/repro_funseeker.dir/filter_endbr.cpp.o" "gcc" "src/funseeker/CMakeFiles/repro_funseeker.dir/filter_endbr.cpp.o.d"
  "/root/repo/src/funseeker/funseeker.cpp" "src/funseeker/CMakeFiles/repro_funseeker.dir/funseeker.cpp.o" "gcc" "src/funseeker/CMakeFiles/repro_funseeker.dir/funseeker.cpp.o.d"
  "/root/repo/src/funseeker/recursive.cpp" "src/funseeker/CMakeFiles/repro_funseeker.dir/recursive.cpp.o" "gcc" "src/funseeker/CMakeFiles/repro_funseeker.dir/recursive.cpp.o.d"
  "/root/repo/src/funseeker/tail_call.cpp" "src/funseeker/CMakeFiles/repro_funseeker.dir/tail_call.cpp.o" "gcc" "src/funseeker/CMakeFiles/repro_funseeker.dir/tail_call.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/repro_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/repro_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/eh/CMakeFiles/repro_eh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
