# Empty dependencies file for repro_elf.
# This may be replaced when dependencies are built.
