file(REMOVE_RECURSE
  "librepro_elf.a"
)
