file(REMOVE_RECURSE
  "CMakeFiles/repro_elf.dir/gnu_property.cpp.o"
  "CMakeFiles/repro_elf.dir/gnu_property.cpp.o.d"
  "CMakeFiles/repro_elf.dir/image.cpp.o"
  "CMakeFiles/repro_elf.dir/image.cpp.o.d"
  "CMakeFiles/repro_elf.dir/reader.cpp.o"
  "CMakeFiles/repro_elf.dir/reader.cpp.o.d"
  "CMakeFiles/repro_elf.dir/writer.cpp.o"
  "CMakeFiles/repro_elf.dir/writer.cpp.o.d"
  "librepro_elf.a"
  "librepro_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
