
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elf/gnu_property.cpp" "src/elf/CMakeFiles/repro_elf.dir/gnu_property.cpp.o" "gcc" "src/elf/CMakeFiles/repro_elf.dir/gnu_property.cpp.o.d"
  "/root/repo/src/elf/image.cpp" "src/elf/CMakeFiles/repro_elf.dir/image.cpp.o" "gcc" "src/elf/CMakeFiles/repro_elf.dir/image.cpp.o.d"
  "/root/repo/src/elf/reader.cpp" "src/elf/CMakeFiles/repro_elf.dir/reader.cpp.o" "gcc" "src/elf/CMakeFiles/repro_elf.dir/reader.cpp.o.d"
  "/root/repo/src/elf/writer.cpp" "src/elf/CMakeFiles/repro_elf.dir/writer.cpp.o" "gcc" "src/elf/CMakeFiles/repro_elf.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
