file(REMOVE_RECURSE
  "CMakeFiles/repro_eval.dir/metrics.cpp.o"
  "CMakeFiles/repro_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/repro_eval.dir/runner.cpp.o"
  "CMakeFiles/repro_eval.dir/runner.cpp.o.d"
  "CMakeFiles/repro_eval.dir/tables.cpp.o"
  "CMakeFiles/repro_eval.dir/tables.cpp.o.d"
  "CMakeFiles/repro_eval.dir/truth.cpp.o"
  "CMakeFiles/repro_eval.dir/truth.cpp.o.d"
  "librepro_eval.a"
  "librepro_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
