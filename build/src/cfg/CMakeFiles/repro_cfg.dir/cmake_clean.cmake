file(REMOVE_RECURSE
  "CMakeFiles/repro_cfg.dir/cfg.cpp.o"
  "CMakeFiles/repro_cfg.dir/cfg.cpp.o.d"
  "librepro_cfg.a"
  "librepro_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
