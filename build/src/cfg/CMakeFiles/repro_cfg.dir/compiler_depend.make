# Empty compiler generated dependencies file for repro_cfg.
# This may be replaced when dependencies are built.
