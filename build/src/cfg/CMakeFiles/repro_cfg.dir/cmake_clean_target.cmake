file(REMOVE_RECURSE
  "librepro_cfg.a"
)
