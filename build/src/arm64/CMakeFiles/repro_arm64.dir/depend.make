# Empty dependencies file for repro_arm64.
# This may be replaced when dependencies are built.
