
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arm64/assembler.cpp" "src/arm64/CMakeFiles/repro_arm64.dir/assembler.cpp.o" "gcc" "src/arm64/CMakeFiles/repro_arm64.dir/assembler.cpp.o.d"
  "/root/repo/src/arm64/decoder.cpp" "src/arm64/CMakeFiles/repro_arm64.dir/decoder.cpp.o" "gcc" "src/arm64/CMakeFiles/repro_arm64.dir/decoder.cpp.o.d"
  "/root/repo/src/arm64/insn.cpp" "src/arm64/CMakeFiles/repro_arm64.dir/insn.cpp.o" "gcc" "src/arm64/CMakeFiles/repro_arm64.dir/insn.cpp.o.d"
  "/root/repo/src/arm64/sweep.cpp" "src/arm64/CMakeFiles/repro_arm64.dir/sweep.cpp.o" "gcc" "src/arm64/CMakeFiles/repro_arm64.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
