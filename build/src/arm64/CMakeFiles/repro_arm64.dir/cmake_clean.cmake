file(REMOVE_RECURSE
  "CMakeFiles/repro_arm64.dir/assembler.cpp.o"
  "CMakeFiles/repro_arm64.dir/assembler.cpp.o.d"
  "CMakeFiles/repro_arm64.dir/decoder.cpp.o"
  "CMakeFiles/repro_arm64.dir/decoder.cpp.o.d"
  "CMakeFiles/repro_arm64.dir/insn.cpp.o"
  "CMakeFiles/repro_arm64.dir/insn.cpp.o.d"
  "CMakeFiles/repro_arm64.dir/sweep.cpp.o"
  "CMakeFiles/repro_arm64.dir/sweep.cpp.o.d"
  "librepro_arm64.a"
  "librepro_arm64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_arm64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
