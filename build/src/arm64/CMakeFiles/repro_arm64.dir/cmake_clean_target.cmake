file(REMOVE_RECURSE
  "librepro_arm64.a"
)
