# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("elf")
subdirs("x86")
subdirs("arm64")
subdirs("eh")
subdirs("synth")
subdirs("funseeker")
subdirs("bti")
subdirs("cfg")
subdirs("baselines")
subdirs("eval")
