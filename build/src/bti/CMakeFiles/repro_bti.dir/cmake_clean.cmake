file(REMOVE_RECURSE
  "CMakeFiles/repro_bti.dir/btiseeker.cpp.o"
  "CMakeFiles/repro_bti.dir/btiseeker.cpp.o.d"
  "librepro_bti.a"
  "librepro_bti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_bti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
