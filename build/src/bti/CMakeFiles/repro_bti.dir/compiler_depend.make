# Empty compiler generated dependencies file for repro_bti.
# This may be replaced when dependencies are built.
