file(REMOVE_RECURSE
  "librepro_bti.a"
)
