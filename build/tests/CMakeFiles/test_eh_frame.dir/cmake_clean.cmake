file(REMOVE_RECURSE
  "CMakeFiles/test_eh_frame.dir/test_eh_frame.cpp.o"
  "CMakeFiles/test_eh_frame.dir/test_eh_frame.cpp.o.d"
  "test_eh_frame"
  "test_eh_frame.pdb"
  "test_eh_frame[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eh_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
