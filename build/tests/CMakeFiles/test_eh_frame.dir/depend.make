# Empty dependencies file for test_eh_frame.
# This may be replaced when dependencies are built.
