# Empty dependencies file for test_real_binaries.
# This may be replaced when dependencies are built.
