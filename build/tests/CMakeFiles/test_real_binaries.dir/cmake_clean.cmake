file(REMOVE_RECURSE
  "CMakeFiles/test_real_binaries.dir/test_real_binaries.cpp.o"
  "CMakeFiles/test_real_binaries.dir/test_real_binaries.cpp.o.d"
  "test_real_binaries"
  "test_real_binaries.pdb"
  "test_real_binaries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_real_binaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
