file(REMOVE_RECURSE
  "CMakeFiles/test_x86_format.dir/test_x86_format.cpp.o"
  "CMakeFiles/test_x86_format.dir/test_x86_format.cpp.o.d"
  "test_x86_format"
  "test_x86_format.pdb"
  "test_x86_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x86_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
