# Empty dependencies file for test_x86_format.
# This may be replaced when dependencies are built.
