# Empty compiler generated dependencies file for test_funseeker.
# This may be replaced when dependencies are built.
