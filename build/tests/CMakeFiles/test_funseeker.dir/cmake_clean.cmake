file(REMOVE_RECURSE
  "CMakeFiles/test_funseeker.dir/test_funseeker.cpp.o"
  "CMakeFiles/test_funseeker.dir/test_funseeker.cpp.o.d"
  "test_funseeker"
  "test_funseeker.pdb"
  "test_funseeker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_funseeker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
