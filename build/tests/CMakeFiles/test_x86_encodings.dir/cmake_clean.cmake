file(REMOVE_RECURSE
  "CMakeFiles/test_x86_encodings.dir/test_x86_encodings.cpp.o"
  "CMakeFiles/test_x86_encodings.dir/test_x86_encodings.cpp.o.d"
  "test_x86_encodings"
  "test_x86_encodings.pdb"
  "test_x86_encodings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x86_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
