# Empty dependencies file for test_x86_encodings.
# This may be replaced when dependencies are built.
