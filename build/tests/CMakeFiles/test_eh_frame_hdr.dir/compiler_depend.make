# Empty compiler generated dependencies file for test_eh_frame_hdr.
# This may be replaced when dependencies are built.
