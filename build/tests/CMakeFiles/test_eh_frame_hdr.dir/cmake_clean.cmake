file(REMOVE_RECURSE
  "CMakeFiles/test_eh_frame_hdr.dir/test_eh_frame_hdr.cpp.o"
  "CMakeFiles/test_eh_frame_hdr.dir/test_eh_frame_hdr.cpp.o.d"
  "test_eh_frame_hdr"
  "test_eh_frame_hdr.pdb"
  "test_eh_frame_hdr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eh_frame_hdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
