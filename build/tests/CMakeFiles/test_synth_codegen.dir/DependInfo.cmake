
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_synth_codegen.cpp" "tests/CMakeFiles/test_synth_codegen.dir/test_synth_codegen.cpp.o" "gcc" "tests/CMakeFiles/test_synth_codegen.dir/test_synth_codegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/repro_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/repro_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/funseeker/CMakeFiles/repro_funseeker.dir/DependInfo.cmake"
  "/root/repo/build/src/bti/CMakeFiles/repro_bti.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/repro_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/repro_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/eh/CMakeFiles/repro_eh.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/repro_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/arm64/CMakeFiles/repro_arm64.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/repro_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
