file(REMOVE_RECURSE
  "CMakeFiles/test_synth_codegen.dir/test_synth_codegen.cpp.o"
  "CMakeFiles/test_synth_codegen.dir/test_synth_codegen.cpp.o.d"
  "test_synth_codegen"
  "test_synth_codegen.pdb"
  "test_synth_codegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
