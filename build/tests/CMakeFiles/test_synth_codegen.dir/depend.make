# Empty dependencies file for test_synth_codegen.
# This may be replaced when dependencies are built.
