# Empty compiler generated dependencies file for test_bti.
# This may be replaced when dependencies are built.
