file(REMOVE_RECURSE
  "CMakeFiles/test_bti.dir/test_bti.cpp.o"
  "CMakeFiles/test_bti.dir/test_bti.cpp.o.d"
  "test_bti"
  "test_bti.pdb"
  "test_bti[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
