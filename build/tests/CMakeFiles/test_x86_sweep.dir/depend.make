# Empty dependencies file for test_x86_sweep.
# This may be replaced when dependencies are built.
