file(REMOVE_RECURSE
  "CMakeFiles/test_x86_sweep.dir/test_x86_sweep.cpp.o"
  "CMakeFiles/test_x86_sweep.dir/test_x86_sweep.cpp.o.d"
  "test_x86_sweep"
  "test_x86_sweep.pdb"
  "test_x86_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x86_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
