file(REMOVE_RECURSE
  "CMakeFiles/test_x86_roundtrip.dir/test_x86_roundtrip.cpp.o"
  "CMakeFiles/test_x86_roundtrip.dir/test_x86_roundtrip.cpp.o.d"
  "test_x86_roundtrip"
  "test_x86_roundtrip.pdb"
  "test_x86_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x86_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
