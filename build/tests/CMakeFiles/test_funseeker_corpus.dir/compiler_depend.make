# Empty compiler generated dependencies file for test_funseeker_corpus.
# This may be replaced when dependencies are built.
