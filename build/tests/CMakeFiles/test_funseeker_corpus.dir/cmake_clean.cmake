file(REMOVE_RECURSE
  "CMakeFiles/test_funseeker_corpus.dir/test_funseeker_corpus.cpp.o"
  "CMakeFiles/test_funseeker_corpus.dir/test_funseeker_corpus.cpp.o.d"
  "test_funseeker_corpus"
  "test_funseeker_corpus.pdb"
  "test_funseeker_corpus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_funseeker_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
