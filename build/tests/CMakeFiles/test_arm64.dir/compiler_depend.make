# Empty compiler generated dependencies file for test_arm64.
# This may be replaced when dependencies are built.
