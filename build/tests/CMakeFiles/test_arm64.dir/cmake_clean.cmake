file(REMOVE_RECURSE
  "CMakeFiles/test_arm64.dir/test_arm64.cpp.o"
  "CMakeFiles/test_arm64.dir/test_arm64.cpp.o.d"
  "test_arm64"
  "test_arm64.pdb"
  "test_arm64[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arm64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
