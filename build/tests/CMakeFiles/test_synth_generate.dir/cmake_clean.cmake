file(REMOVE_RECURSE
  "CMakeFiles/test_synth_generate.dir/test_synth_generate.cpp.o"
  "CMakeFiles/test_synth_generate.dir/test_synth_generate.cpp.o.d"
  "test_synth_generate"
  "test_synth_generate.pdb"
  "test_synth_generate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
