file(REMOVE_RECURSE
  "CMakeFiles/test_byteweight.dir/test_byteweight.cpp.o"
  "CMakeFiles/test_byteweight.dir/test_byteweight.cpp.o.d"
  "test_byteweight"
  "test_byteweight.pdb"
  "test_byteweight[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_byteweight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
