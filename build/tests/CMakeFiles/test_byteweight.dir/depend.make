# Empty dependencies file for test_byteweight.
# This may be replaced when dependencies are built.
