# Empty dependencies file for test_x86_decoder.
# This may be replaced when dependencies are built.
