file(REMOVE_RECURSE
  "CMakeFiles/test_x86_decoder.dir/test_x86_decoder.cpp.o"
  "CMakeFiles/test_x86_decoder.dir/test_x86_decoder.cpp.o.d"
  "test_x86_decoder"
  "test_x86_decoder.pdb"
  "test_x86_decoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x86_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
