file(REMOVE_RECURSE
  "CMakeFiles/test_lsda.dir/test_lsda.cpp.o"
  "CMakeFiles/test_lsda.dir/test_lsda.cpp.o.d"
  "test_lsda"
  "test_lsda.pdb"
  "test_lsda[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
