# Empty compiler generated dependencies file for test_lsda.
# This may be replaced when dependencies are built.
