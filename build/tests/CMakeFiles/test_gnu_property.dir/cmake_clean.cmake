file(REMOVE_RECURSE
  "CMakeFiles/test_gnu_property.dir/test_gnu_property.cpp.o"
  "CMakeFiles/test_gnu_property.dir/test_gnu_property.cpp.o.d"
  "test_gnu_property"
  "test_gnu_property.pdb"
  "test_gnu_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnu_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
