# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_x86_decoder[1]_include.cmake")
include("/root/repo/build/tests/test_x86_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_x86_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_elf[1]_include.cmake")
include("/root/repo/build/tests/test_eh_frame[1]_include.cmake")
include("/root/repo/build/tests/test_lsda[1]_include.cmake")
include("/root/repo/build/tests/test_synth_generate[1]_include.cmake")
include("/root/repo/build/tests/test_synth_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_funseeker[1]_include.cmake")
include("/root/repo/build/tests/test_funseeker_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_arm64[1]_include.cmake")
include("/root/repo/build/tests/test_bti[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_variants[1]_include.cmake")
include("/root/repo/build/tests/test_eh_frame_hdr[1]_include.cmake")
include("/root/repo/build/tests/test_x86_encodings[1]_include.cmake")
include("/root/repo/build/tests/test_real_binaries[1]_include.cmake")
include("/root/repo/build/tests/test_gnu_property[1]_include.cmake")
include("/root/repo/build/tests/test_x86_format[1]_include.cmake")
include("/root/repo/build/tests/test_recursive[1]_include.cmake")
include("/root/repo/build/tests/test_byteweight[1]_include.cmake")
include("/root/repo/build/tests/test_cfg[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
