// Corpus explorer: stream a slice of the synthetic dataset and print
// per-binary statistics — the raw material behind the paper's study
// section (§III). Useful for eyeballing what the generator produces.
//
//   $ ./corpus_explorer [scale]     (default 0.25)
#include <cstdio>
#include <cstdlib>

#include "elf/reader.hpp"
#include "eval/tables.hpp"
#include "funseeker/disassemble.hpp"
#include "synth/corpus.hpp"

using namespace fsr;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;

  eval::Table table({"Binary", "text KiB", "funcs", "frags", "endbr", "LPs",
                     "setjmp", "FDEs", "imports"});
  std::size_t shown = 0, total = 0;
  std::size_t total_funcs = 0, total_endbr = 0;

  synth::for_each_binary(synth::corpus_configs(scale > 0 ? scale : 0.25),
                         [&](const synth::DatasetEntry& entry) {
    ++total;
    total_funcs += entry.truth.functions.size();
    total_endbr += entry.truth.endbr_entries.size();
    // Print one representative configuration per program (keep the
    // table readable): x64 PIE -O2.
    if (entry.config.machine != elf::Machine::kX8664 ||
        entry.config.kind != elf::BinaryKind::kPie ||
        entry.config.opt != synth::OptLevel::kO2)
      return;
    ++shown;
    const elf::Image img = elf::read_elf(entry.stripped_bytes());
    const elf::Section* eh = img.find_section(".eh_frame");
    char kib[32];
    std::snprintf(kib, sizeof(kib), "%.1f", img.text().data.size() / 1024.0);
    table.add_row({entry.config.name(), kib,
                   std::to_string(entry.truth.functions.size()),
                   std::to_string(entry.truth.fragments.size()),
                   std::to_string(entry.truth.endbr_entries.size()),
                   std::to_string(entry.truth.landing_pads.size()),
                   std::to_string(entry.truth.setjmp_pads.size()),
                   eh != nullptr ? "yes" : "no",
                   std::to_string(img.plt.size())});
  });

  std::printf("%s\n", table.render().c_str());
  std::printf("corpus: %zu binaries total (showing the %zu x64/pie/O2 cells), "
              "%zu functions, %.1f%% with an entry end-branch\n",
              total, shown, total_funcs,
              100.0 * static_cast<double>(total_endbr) / static_cast<double>(total_funcs));
  return 0;
}
