// Corpus export: materialize the synthetic dataset to disk, the way
// the paper publicizes its benchmark ("both original and stripped
// binary datasets", §III-A). For every dataset cell this writes
//
//   <dir>/<name>.elf            unstripped (symbols = ground truth)
//   <dir>/<name>.stripped.elf   what analyzers are evaluated on
//   <dir>/<name>.truth          text ground truth (entries, fragments,
//                               endbr/pad classification)
//
//   $ ./corpus_export <dir> [scale]      (default scale 0.1)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "elf/writer.hpp"
#include "synth/corpus.hpp"
#include "util/str.hpp"

using namespace fsr;

namespace {

void write_file(const std::filesystem::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void write_truth(const std::filesystem::path& path, const synth::GroundTruth& truth) {
  std::ofstream out(path);
  auto dump = [&](const char* tag, const std::vector<std::uint64_t>& v) {
    for (std::uint64_t a : v) out << tag << " " << util::hex(a) << "\n";
  };
  dump("function", truth.functions);
  dump("fragment", truth.fragments);
  dump("endbr_entry", truth.endbr_entries);
  dump("setjmp_pad", truth.setjmp_pads);
  dump("landing_pad", truth.landing_pads);
  dump("dead_function", truth.dead_functions);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <output-dir> [scale]\n", argv[0]);
    return 1;
  }
  const std::filesystem::path dir = argv[1];
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;
  std::filesystem::create_directories(dir);

  std::size_t count = 0, bytes_total = 0;
  synth::for_each_binary(synth::corpus_configs(scale > 0 ? scale : 0.1),
                         [&](const synth::DatasetEntry& entry) {
    const std::string name = entry.config.name();
    const auto unstripped = elf::write_elf(entry.image);
    const auto stripped = entry.stripped_bytes();
    write_file(dir / (name + ".elf"), unstripped);
    write_file(dir / (name + ".stripped.elf"), stripped);
    write_truth(dir / (name + ".truth"), entry.truth);
    ++count;
    bytes_total += unstripped.size() + stripped.size();
  });

  std::printf("exported %zu binaries (%.1f MiB) to %s\n", count,
              static_cast<double>(bytes_total) / (1024.0 * 1024.0), dir.c_str());
  std::printf("verify one with: ./quickstart %s/<name>.stripped.elf\n", dir.c_str());
  return 0;
}
