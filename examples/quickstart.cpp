// Quickstart: generate one CET-enabled binary, identify its functions
// with FunSeeker, and check the result against the exact ground truth.
//
//   $ ./quickstart [path/to/binary.elf]
//
// With no argument a synthetic Coreutils-like binary is generated in
// memory; with a path, that ELF file is analyzed instead (entries are
// printed without scoring, since no ground truth is available).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "eval/metrics.hpp"
#include "funseeker/funseeker.hpp"
#include "synth/corpus.hpp"
#include "util/str.hpp"

using namespace fsr;

namespace {

int analyze_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  const funseeker::Result result = funseeker::analyze_bytes(bytes);
  std::printf("%zu function entries identified in %s:\n", result.functions.size(), path);
  for (std::uint64_t f : result.functions)
    std::printf("  %s\n", util::hex(f).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) return analyze_file(argv[1]);

  // 1. Pick a dataset cell: GCC, Coreutils-like program 3, x86-64 PIE, -O2.
  synth::BinaryConfig cfg;
  cfg.compiler = synth::Compiler::kGcc;
  cfg.suite = synth::Suite::kCoreutils;
  cfg.program_index = 3;
  cfg.machine = elf::Machine::kX8664;
  cfg.kind = elf::BinaryKind::kPie;
  cfg.opt = synth::OptLevel::kO2;

  // 2. Generate the binary (plus its exact ground truth).
  const synth::DatasetEntry entry = synth::make_binary(cfg);
  const std::vector<std::uint8_t> stripped = entry.stripped_bytes();
  std::printf("generated %s: %zu bytes, %zu functions (ground truth)\n",
              cfg.name().c_str(), stripped.size(), entry.truth.functions.size());

  // 3. Run FunSeeker on the stripped bytes (Algorithm 1, full config).
  const funseeker::Result result = funseeker::analyze_bytes(stripped);
  std::printf("FunSeeker: %zu end-branches (%zu kept after FILTERENDBR), "
              "%zu call targets, %zu jump targets (%zu tail calls)\n",
              result.endbrs.size(), result.endbrs_kept.size(),
              result.call_targets.size(), result.jmp_targets.size(),
              result.tail_call_targets.size());

  // 4. Score against the ground truth.
  const eval::Score s = eval::score(result.functions, entry.truth.functions);
  std::printf("identified %zu entries: precision %s%%, recall %s%%\n",
              result.functions.size(), util::pct(s.precision()).c_str(),
              util::pct(s.recall()).c_str());

  // 5. Show the first few entries.
  std::printf("first entries:");
  for (std::size_t i = 0; i < result.functions.size() && i < 8; ++i)
    std::printf(" %s", util::hex(result.functions[i]).c_str());
  std::printf(" ...\n");
  return 0;
}
