// Reproduces the paper's illustrative listings (Figures 1 and 2): the
// three places an end-branch instruction appears in a CET binary —
//   (1) a function entry that may be reached through a function pointer,
//   (2) the return pad after an indirect-return call (setjmp),
//   (3) a C++ exception catch block (landing pad).
// Each pattern is assembled, disassembled back, and printed annotated.
#include <cstdio>
#include <string>

#include "eh/lsda.hpp"
#include "elf/types.hpp"
#include "funseeker/disassemble.hpp"
#include "funseeker/filter_endbr.hpp"
#include "x86/assembler.hpp"
#include "x86/sweep.hpp"

using namespace fsr;
using x86::Assembler;
using x86::Cond;
using x86::Label;
using x86::Mode;
using x86::Reg;

namespace {

constexpr std::uint64_t kText = 0x401000;
constexpr std::uint64_t kPlt = 0x400400;

void dump(const char* title, const std::vector<std::uint8_t>& code,
          std::uint64_t base, const std::vector<std::pair<std::uint64_t, const char*>>& notes) {
  std::printf("--- %s ---\n", title);
  x86::SweepResult sweep = x86::linear_sweep(code, base, Mode::k64);
  for (const auto& insn : sweep.insns) {
    std::string bytes;
    for (std::size_t i = 0; i < insn.length; ++i) {
      char b[4];
      std::snprintf(b, sizeof(b), "%02x ", code[insn.addr - base + i]);
      bytes += b;
    }
    const char* note = "";
    for (const auto& [addr, text] : notes)
      if (addr == insn.addr) note = text;
    std::printf("  0x%06llx: %-30s %-8s%s%s\n",
                static_cast<unsigned long long>(insn.addr), bytes.c_str(),
                x86::kind_name(insn.kind).c_str(), *note ? "  ; " : "", note);
  }
  std::printf("\n");
}

elf::Image wrap(std::vector<std::uint8_t> code) {
  elf::Image img;
  img.machine = elf::Machine::kX8664;
  img.kind = elf::BinaryKind::kExec;
  img.entry = kText;
  elf::Section text;
  text.name = ".text";
  text.type = elf::kShtProgbits;
  text.flags = elf::kShfAlloc | elf::kShfExecinstr;
  text.addr = kText;
  text.data = std::move(code);
  img.sections.push_back(std::move(text));
  return img;
}

// Figure 1: `foo` starts with endbr64 because main takes its address
// (`fp = &foo`) and calls through the spilled pointer; the switch
// lowers to a NOTRACK indirect jump, so its case blocks need no marker.
void figure1() {
  Assembler a(Mode::k64, kText);
  Label foo = a.make_label();
  Label cases = a.make_label();
  std::vector<std::pair<std::uint64_t, const char*>> notes;

  a.bind(foo);
  notes.emplace_back(a.here(), "foo: endbr64 (address-taken function)");
  a.endbr();
  a.push(Reg::kBp);
  a.mov_rr(Reg::kBp, Reg::kSp);
  a.leave();
  a.ret();

  notes.emplace_back(a.here(), "main: endbr64");
  a.endbr();
  a.push(Reg::kBp);
  a.mov_rr(Reg::kBp, Reg::kSp);
  notes.emplace_back(a.here(), "lea rcx, [rip + foo]  (fp = &foo)");
  a.load_addr(Reg::kCx, foo);
  a.mov_frame_reg(-16, Reg::kCx);
  notes.emplace_back(a.here(), "notrack jmp (switch dispatch)");
  a.jmp_table(Reg::kAx, cases, /*notrack=*/true);
  a.bind_to(cases, 0x500000);
  notes.emplace_back(a.here(), "call qword ptr [rbp-16]  (fp())");
  a.call_frame(-16);
  a.leave();
  a.ret();

  dump("Figure 1: IBT protection (entry endbr, NOTRACK switch, fp call)", a.finish(),
       kText, notes);
}

// Figure 2a: the compiler plants endbr64 right after `call setjmp@plt`
// because longjmp returns there with an indirect jump.
void figure2a() {
  Assembler a(Mode::k64, kText);
  std::vector<std::pair<std::uint64_t, const char*>> notes;
  notes.emplace_back(a.here(), "sort_files: endbr64");
  a.endbr();
  a.mov_ri(Reg::kDi, 0x3000);
  notes.emplace_back(a.here(), "call setjmp@plt");
  a.call_addr(kPlt + 16);
  const std::uint64_t pad = a.here();
  notes.emplace_back(pad, "endbr64  <-- longjmp lands here (NOT a function)");
  a.endbr();
  a.test_rr(Reg::kAx, Reg::kAx);
  Label skip = a.make_label();
  a.jcc(Cond::kNe, skip);
  a.nop(3);
  a.bind(skip);
  a.ret();
  auto code = a.finish();
  dump("Figure 2a: setjmp return pad (ls from Coreutils)", code, kText, notes);

  // Show FILTERENDBR telling the two end-branches apart.
  elf::Image img = wrap(code);
  elf::Section plt;
  plt.name = ".plt";
  plt.type = elf::kShtProgbits;
  plt.flags = elf::kShfAlloc | elf::kShfExecinstr;
  plt.addr = kPlt;
  plt.data.assign(32, 0x90);
  img.sections.push_back(std::move(plt));
  img.plt.push_back({kPlt + 16, "setjmp"});

  funseeker::DisasmSets sets = funseeker::disassemble(img);
  funseeker::FilterResult fr = funseeker::filter_endbr(img, sets);
  std::printf("FILTERENDBR kept %zu end-branch(es), removed %zu indirect-return pad(s)\n\n",
              fr.kept.size(), fr.removed_indirect_return.size());
}

// Figure 2b: a catch block begins with endbr64 right after the ret of
// the happy path (508.namd's _ZN8MoleculeC2Ev).
void figure2b() {
  Assembler a(Mode::k64, kText);
  std::vector<std::pair<std::uint64_t, const char*>> notes;
  Label cold = a.make_label();
  notes.emplace_back(a.here(), "_ZN8MoleculeC2Ev: endbr64");
  a.endbr();
  a.push(Reg::kR12);
  const std::uint64_t call_at = a.here();
  a.call_addr(kText + 0x100);  // some callee inside a try block
  a.pop(Reg::kR12);
  a.ret();
  const std::uint64_t pad = a.here();
  notes.emplace_back(pad, "endbr64  <-- catch block starts here (NOT a function)");
  a.endbr();
  a.mov_rr(Reg::kR12, Reg::kAx);
  notes.emplace_back(a.here(), "jmp _ZN8MoleculeC2Ev_cold");
  a.jmp(cold);
  a.align(16);
  a.bind(cold);
  a.nop(2);
  a.ret();
  auto code = a.finish();
  dump("Figure 2b: exception landing pad (508.namd from SPEC)", code, kText, notes);

  eh::Lsda lsda;
  lsda.func_start = kText;
  lsda.call_sites = {{call_at, 5, pad, 1}};
  auto bytes = eh::build_lsda(lsda);
  std::printf("the LSDA maps call site 0x%llx+5 to landing pad 0x%llx (%zu-byte table)\n\n",
              static_cast<unsigned long long>(call_at),
              static_cast<unsigned long long>(pad), bytes.size());
}

}  // namespace

int main() {
  std::printf("End-branch usage patterns from the paper (Figures 1-2)\n\n");
  figure1();
  figure2a();
  figure2b();
  return 0;
}
