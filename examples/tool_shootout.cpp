// Tool shootout: run FunSeeker and the three baseline analyzers on one
// binary and diff their answers — a single-binary version of Table III.
//
//   $ ./tool_shootout [program_index] [x86|x64]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "eval/runner.hpp"
#include "eval/tables.hpp"
#include "util/str.hpp"

using namespace fsr;

int main(int argc, char** argv) {
  synth::BinaryConfig cfg;
  cfg.compiler = synth::Compiler::kGcc;
  cfg.suite = synth::Suite::kSpec;
  cfg.program_index = argc > 1 ? std::atoi(argv[1]) : 1;
  cfg.machine = (argc > 2 && std::strcmp(argv[2], "x86") == 0) ? elf::Machine::kX86
                                                               : elf::Machine::kX8664;
  cfg.kind = elf::BinaryKind::kPie;
  cfg.opt = synth::OptLevel::kO2;

  const synth::DatasetEntry entry = synth::make_binary(cfg);
  std::printf("binary %s: %zu true functions, %zu fragments\n\n", cfg.name().c_str(),
              entry.truth.functions.size(), entry.truth.fragments.size());

  eval::Table table({"Tool", "found", "TP", "FP", "FN", "Prec %", "Rec %", "ms"});
  for (eval::Tool tool : {eval::Tool::kFunSeeker, eval::Tool::kIdaLike,
                          eval::Tool::kGhidraLike, eval::Tool::kFetchLike}) {
    const eval::RunResult r = eval::run_tool(tool, entry);
    table.add_row({to_string(tool), std::to_string(r.found.size()),
                   std::to_string(r.score.tp), std::to_string(r.score.fp),
                   std::to_string(r.score.fn), util::pct(r.score.precision(), 2),
                   util::pct(r.score.recall(), 2), util::fixed(r.seconds * 1e3, 3)});
  }
  std::printf("%s\n", table.render().c_str());

  // Diff: what FunSeeker reports that the truth disputes, and misses.
  const eval::RunResult fs = eval::run_tool(eval::Tool::kFunSeeker, entry);
  std::printf("FunSeeker false positives:");
  std::size_t shown = 0;
  for (std::uint64_t f : fs.found) {
    if (std::binary_search(entry.truth.functions.begin(), entry.truth.functions.end(), f))
      continue;
    const bool frag = std::binary_search(entry.truth.fragments.begin(),
                                         entry.truth.fragments.end(), f);
    std::printf(" %s%s", util::hex(f).c_str(), frag ? "(.part/.cold)" : "(?)");
    if (++shown >= 6) break;
  }
  if (shown == 0) std::printf(" none");
  std::printf("\nFunSeeker false negatives:");
  shown = 0;
  for (std::uint64_t f : entry.truth.functions) {
    if (std::binary_search(fs.found.begin(), fs.found.end(), f)) continue;
    const bool dead = std::binary_search(entry.truth.dead_functions.begin(),
                                         entry.truth.dead_functions.end(), f);
    std::printf(" %s%s", util::hex(f).c_str(), dead ? "(dead)" : "(tail-only)");
    if (++shown >= 6) break;
  }
  if (shown == 0) std::printf(" none");
  std::printf("\n");
  return 0;
}
