// ARM BTI demo (paper §VI): generate the same synthetic program for
// x86-64/CET and AArch64/BTI, run the matching identifier on each, and
// show that the algorithm carries over — minus the FILTERENDBR stage,
// which the ARM marker design makes unnecessary.
#include <cstdio>

#include "bti/btiseeker.hpp"
#include "eval/metrics.hpp"
#include "funseeker/funseeker.hpp"
#include "synth/corpus.hpp"
#include "util/str.hpp"

using namespace fsr;

int main() {
  synth::BinaryConfig cfg;
  cfg.compiler = synth::Compiler::kGcc;
  cfg.suite = synth::Suite::kSpec;
  cfg.program_index = 1;  // a C++ program: landing pads in play
  cfg.kind = elf::BinaryKind::kPie;
  cfg.opt = synth::OptLevel::kO2;

  // x86-64 / CET.
  cfg.machine = elf::Machine::kX8664;
  const synth::DatasetEntry x86 = synth::make_binary(cfg);
  const funseeker::Result rx = funseeker::analyze_bytes(x86.stripped_bytes());
  const eval::Score sx = eval::score(rx.functions, x86.truth.functions);

  // AArch64 / BTI — same program model, different marker architecture.
  cfg.machine = elf::Machine::kArm64;
  const synth::DatasetEntry arm = synth::make_binary(cfg);
  const bti::Result ra = bti::analyze_bytes(arm.stripped_bytes());
  const eval::Score sa = eval::score(ra.functions, arm.truth.functions);

  std::printf("program %s, built twice:\n\n", synth::to_string(cfg.suite).c_str());

  std::printf("x86-64 + CET   : %zu endbr (%zu filtered away: %zu landing pads, "
              "%zu setjmp pads)\n",
              rx.endbrs.size(), rx.endbrs.size() - rx.endbrs_kept.size(),
              rx.removed_landing_pads.size(), rx.removed_indirect_return.size());
  std::printf("                 precision %s%%  recall %s%%\n\n",
              util::pct(sx.precision(), 2).c_str(), util::pct(sx.recall(), 2).c_str());

  std::printf("AArch64 + BTI  : %zu `bti c` call pads, %zu `bti j` jump pads\n",
              ra.call_pads.size(), ra.jump_pads.size());
  std::printf("                 (jump pads cover the landing pads and setjmp returns —\n");
  std::printf("                  no FILTERENDBR stage exists: the ISA already separates\n");
  std::printf("                  call-landing from jump-landing markers)\n");
  std::printf("                 precision %s%%  recall %s%%\n",
              util::pct(sa.precision(), 2).c_str(), util::pct(sa.recall(), 2).c_str());
  return 0;
}
